"""Unit tests for terminal bar-chart rendering."""

import pytest

from repro.analysis.charts import (
    bar_chart,
    grouped_bar_chart,
    series_chart,
    stacked_bar_chart,
)


class TestBarChart:
    def test_bar_lengths_are_proportional(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") * 2 == pytest.approx(
            lines[1].count("#"), abs=2)

    def test_values_are_printed(self):
        chart = bar_chart({"x": 1.5}, width=10)
        assert "1.50" in chart

    def test_reference_marker_is_drawn(self):
        chart = bar_chart({"a": 0.5, "b": 2.0}, width=20, reference=1.0)
        # The short bar's line carries a reference mark beyond its bar.
        assert "|" in chart.splitlines()[0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_nonpositive_peak_raises(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})

    def test_labels_are_aligned(self):
        chart = bar_chart({"a": 1.0, "longer": 1.0})
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")


class TestGroupedBarChart:
    def test_groups_render_as_blocks(self):
        chart = grouped_bar_chart({"SP": {"sac": 1.6},
                                   "MP": {"sac": 1.0}})
        assert "SP:" in chart
        assert "MP:" in chart


class TestStackedBarChart:
    def test_components_use_distinct_symbols_with_legend(self):
        chart = stacked_bar_chart({
            "bench": {"local": 2.0, "remote": 1.0}})
        assert "legend:" in chart
        assert "local" in chart
        assert "remote" in chart

    def test_custom_symbols(self):
        chart = stacked_bar_chart(
            {"x": {"a": 1.0}}, symbols={"a": "@"})
        assert "@" in chart

    def test_totals_are_printed(self):
        chart = stacked_bar_chart({"x": {"a": 1.0, "b": 2.0}})
        assert "3.00" in chart


class TestSeriesChart:
    def test_renders_all_points_and_series(self):
        points = [{"x": "48GB/s", "sm": 2.0, "sac": 1.9},
                  {"x": "768GB/s", "sm": 1.0, "sac": 1.1}]
        chart = series_chart(points, "x", ["sm", "sac"])
        assert chart.count("48GB/s") == 2
        assert "sac" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            series_chart([], "x", ["y"])
