"""Unit tests for the windowed working-set / sharing analysis."""

import numpy as np
import pytest

from repro.analysis import (
    SHARING_FALSE,
    SHARING_NONE,
    SHARING_TRUE,
    classify_lines,
    working_set_profile,
)
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec, get

LINE = 128
PAGE = 4096


class TestClassifyLines:
    def test_true_sharing(self):
        chips = np.array([0, 1])
        addrs = np.array([0, 0])
        classes = classify_lines(chips, addrs, LINE, PAGE)
        assert classes[0] == SHARING_TRUE

    def test_false_sharing(self):
        # Two chips touch different lines of the same page.
        chips = np.array([0, 1])
        addrs = np.array([0, LINE])
        classes = classify_lines(chips, addrs, LINE, PAGE)
        assert classes[0] == SHARING_FALSE
        assert classes[1] == SHARING_FALSE

    def test_no_sharing(self):
        # Different pages entirely.
        chips = np.array([0, 1])
        addrs = np.array([0, PAGE])
        classes = classify_lines(chips, addrs, LINE, PAGE)
        assert classes[0] == SHARING_NONE
        assert classes[PAGE // LINE] == SHARING_NONE

    def test_mixed_page(self):
        # Line 0 truly shared; line 1 only by chip 0 but page is shared.
        chips = np.array([0, 1, 0])
        addrs = np.array([0, 0, LINE])
        classes = classify_lines(chips, addrs, LINE, PAGE)
        assert classes[0] == SHARING_TRUE
        assert classes[1] == SHARING_FALSE


def tiny_spec():
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3,
                      hot_fraction=0.5)
    return BenchmarkSpec(
        name="ws", suite="test", num_ctas=8, footprint_mb=4,
        true_shared_mb=1, false_shared_mb=1, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=2),), seed=9)


class TestWorkingSetProfile:
    def test_points_follow_requested_windows(self):
        points = working_set_profile(tiny_spec(), num_chips=4,
                                     window_cycles=(1000, 10000),
                                     accesses_per_epoch=512,
                                     scale=1.0 / 16, clusters_per_chip=4)
        assert [p.window_cycles for p in points] == [1000, 10000]

    def test_larger_windows_see_larger_working_sets(self):
        points = working_set_profile(tiny_spec(), num_chips=4,
                                     window_cycles=(500, 50000),
                                     accesses_per_epoch=512,
                                     scale=1.0 / 16, clusters_per_chip=4)
        assert points[1].total_bytes >= points[0].total_bytes

    def test_all_three_classes_appear(self):
        points = working_set_profile(tiny_spec(), num_chips=4,
                                     window_cycles=(100000,),
                                     accesses_per_epoch=1024,
                                     scale=1.0 / 16, clusters_per_chip=4)
        point = points[0]
        assert point.true_shared_bytes > 0
        assert point.false_shared_bytes > 0
        assert point.non_shared_bytes > 0

    def test_replication_counts_copies_per_chip(self):
        # All-true workload: the replicated working set over a huge
        # window approaches num_chips x the distinct footprint.
        phase = PhaseSpec(weight_true=1.0, weight_false=0.0,
                          weight_private=0.0, hot_fraction=1.0,
                          hot_weight=0.0)
        spec = BenchmarkSpec(
            name="rep", suite="test", num_ctas=8, footprint_mb=1,
            true_shared_mb=1, false_shared_mb=0, preference="sm-side",
            kernels=(KernelSpec(name="k", phase=phase, epochs=2),), seed=9)
        points = working_set_profile(spec, num_chips=4,
                                     window_cycles=(10 ** 9,),
                                     accesses_per_epoch=4096,
                                     scale=1.0 / 16, clusters_per_chip=4)
        distinct_bytes = 1024 * 1024 / 16  # 1 MB at scale 1/16
        assert points[0].true_shared_bytes > 2.5 * distinct_bytes

    def test_as_mb_reporting(self):
        points = working_set_profile(tiny_spec(), num_chips=4,
                                     window_cycles=(1000,),
                                     accesses_per_epoch=256,
                                     scale=1.0 / 16, clusters_per_chip=4)
        row = points[0].as_mb()
        assert row["total_mb"] == pytest.approx(
            row["true_mb"] + row["false_mb"] + row["none_mb"])

    def test_suite_mp_has_bigger_active_demand_than_sp(self):
        sp = working_set_profile(get("RN"), window_cycles=(20000,),
                                 accesses_per_epoch=2048, scale=1.0 / 16)
        mp = working_set_profile(get("NN"), window_cycles=(20000,),
                                 accesses_per_epoch=2048, scale=1.0 / 16)
        assert mp[0].active_demand_bytes > sp[0].active_demand_bytes

    def test_active_demand_excludes_single_touch_lines(self):
        # A pure streaming workload (no reuse) has zero active demand.
        phase = PhaseSpec(weight_true=0.0, weight_false=0.0,
                          weight_private=1.0, hot_fraction=1.0,
                          hot_weight=0.0)
        spec = BenchmarkSpec(
            name="stream", suite="test", num_ctas=8, footprint_mb=512,
            true_shared_mb=0, false_shared_mb=0, preference="memory-side",
            kernels=(KernelSpec(name="k", phase=phase, epochs=1),), seed=9)
        points = working_set_profile(spec, num_chips=4,
                                     window_cycles=(10 ** 9,),
                                     accesses_per_epoch=512,
                                     scale=1.0, clusters_per_chip=4)
        # With 512 accesses over 128 MB/chip, repeats are essentially
        # impossible: nothing is re-referenced.
        assert points[0].active_demand_bytes == 0.0
        assert points[0].non_shared_bytes > 0
