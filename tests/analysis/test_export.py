"""Unit tests for CSV export of experiment results."""

import csv

import pytest

from repro.analysis.export import (
    export_experiment,
    flatten_grouped,
    flatten_speedups,
    write_csv,
)


def read_back(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestWriteCSV:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        count = write_csv(str(path), ["a", "b"], [[1, 2], [3, 4]])
        assert count == 2
        rows = read_back(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


class TestFlatteners:
    def test_flatten_speedups_is_sorted(self):
        flat = flatten_speedups({("b", "x"): 2.0, ("a", "y"): 1.0})
        assert flat == [["a", "y", 1.0], ["b", "x", 2.0]]

    def test_flatten_grouped(self):
        flat = flatten_grouped({"SP": {"sac": 1.5}})
        assert flat == [["SP", "sac", 1.5]]


class TestExportDispatch:
    def test_speedups_shape(self, tmp_path):
        result = {"speedups": {("RN", "sac"): 2.0}, "other": 1}
        path = tmp_path / "fig8.csv"
        assert export_experiment(result, str(path)) == 1
        assert read_back(path)[1] == ["RN", "sac", "2.0"]

    def test_rows_shape(self, tmp_path):
        result = {"rows": [{"benchmark": "RN", "ctas": 512}]}
        path = tmp_path / "table4.csv"
        export_experiment(result, str(path))
        rows = read_back(path)
        assert rows[0] == ["benchmark", "ctas"]
        assert rows[1] == ["RN", "512"]

    def test_series_shape(self, tmp_path):
        result = {"series": {"RN": [{"factor": 2.0, "sac_speedup": 1.4}]}}
        path = tmp_path / "fig13.csv"
        export_experiment(result, str(path))
        rows = read_back(path)
        assert rows[0] == ["name", "factor", "sac_speedup"]

    def test_grouped_shape(self, tmp_path):
        result = {"performance": {"SP": {"sac": 1.9}}}
        path = tmp_path / "fig1.csv"
        export_experiment(result, str(path))
        assert read_back(path)[1] == ["SP", "sac", "1.9"]

    def test_unknown_shape_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unrecognized"):
            export_experiment({"weird": 1}, str(tmp_path / "x.csv"))

    def test_real_experiment_roundtrip(self, tmp_path):
        from repro.experiments import fig12_time_varying
        result = fig12_time_varying.run_experiment(fast=True)
        # Figure 12 uses "launches" -> adapt through the series path.
        result_as_series = {"series": {"BFS": result["launches"]}}
        path = tmp_path / "fig12.csv"
        count = export_experiment(result_as_series, str(path))
        assert count == len(result["launches"])
