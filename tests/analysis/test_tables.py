"""Unit tests for table/series formatting."""

import pytest

from repro.analysis import format_series, format_table, normalize


class TestFormatTable:
    def test_alignment_and_headers(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.00" in lines[2]
        assert "2.50" in lines[3]

    def test_mixed_types(self):
        table = format_table(["x"], [[42], ["text"], [3.14159]])
        assert "42" in table
        assert "text" in table
        assert "3.14" in table

    def test_custom_float_format(self):
        table = format_table(["x"], [[0.123456]], float_format="{:.4f}")
        assert "0.1235" in table


class TestFormatSeries:
    def test_renders_title_and_points(self):
        text = format_series("My figure", {"a": {"x": 1.0, "y": 2.0}})
        assert text.startswith("My figure")
        assert "a: x=1.000 y=2.000" in text


class TestNormalize:
    def test_normalizes_by_reference(self):
        values = normalize({"a": 2.0, "b": 4.0}, "a")
        assert values == {"a": 1.0, "b": 2.0}

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0, "b": 1.0}, "a")
