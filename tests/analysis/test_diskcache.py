"""Unit tests for the persistent on-disk result cache."""

import pickle

from repro.analysis import diskcache
from repro.analysis.diskcache import (
    SCHEMA_VERSION,
    ResultCache,
    content_key,
)
from repro.arch import baseline
from repro.sim.engine import EngineParams
from repro.sim.stats import KernelStats, RunStats


def sample_stats():
    stats = RunStats(benchmark="b", organization="memory-side",
                     cycles=123.0, accesses=100, llc_hits=40,
                     llc_lookups=100)
    stats.merge_kernel(KernelStats(name="k", cycles=10.0, accesses=10))
    return stats


class TestContentKey:
    def test_key_is_stable_across_equal_values(self):
        a = content_key(config=baseline(), scale=1 / 16,
                        params=EngineParams())
        b = content_key(config=baseline(), scale=1 / 16,
                        params=EngineParams())
        assert a == b

    def test_key_changes_with_any_field(self):
        base = content_key(config=baseline(), scale=1 / 16,
                           params=EngineParams())
        assert content_key(config=baseline(), scale=1 / 8,
                           params=EngineParams()) != base
        assert content_key(config=baseline(), scale=1 / 16,
                           params=EngineParams(batched=False)) != base

    def test_float_encoding_distinguishes_close_values(self):
        assert content_key(x=0.1) != content_key(x=0.1 + 1e-12)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key(x=1)
        assert cache.load(key) is None
        cache.store(key, sample_stats())
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.comparable_dict() == sample_stats().comparable_dict()
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_persists_across_instances(self, tmp_path):
        key = content_key(x=2)
        ResultCache(tmp_path).store(key, sample_stats())
        assert ResultCache(tmp_path).load(key) is not None

    def test_stale_schema_versions_are_evicted(self, tmp_path):
        old = tmp_path / f"v{SCHEMA_VERSION - 1}"
        old.mkdir(parents=True)
        (old / "stale.pkl").write_bytes(b"junk")
        cache = ResultCache(tmp_path)
        cache.store(content_key(x=3), sample_stats())
        assert not old.exists()
        assert cache.version_dir.exists()

    def test_corrupt_payload_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key(x=4)
        cache.store(key, sample_stats())
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.load(key) is None
        # The bad bytes are preserved for forensics, not destroyed.
        assert not path.exists()
        assert (cache.quarantine_dir / path.name).read_bytes() == \
            b"not a pickle"
        assert cache.quarantined == 1

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key(x=5)
        cache.store(key, sample_stats())
        path = cache._path(key)
        path.write_bytes(pickle.dumps({"not": "runstats"}))
        assert cache.load(key) is None
        assert cache.quarantined == 1

    def test_quarantined_payload_does_not_count_as_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key(x=7)
        cache.store(key, sample_stats())
        cache._path(key).write_bytes(b"torn")
        cache.load(key)
        # Quarantined files sit beside the version dir, invisible to the
        # entry count and to clear().
        assert len(cache) == 0
        cache.clear()
        assert (cache.quarantine_dir / cache._path(key).name).exists()

    def test_store_interrupt_still_raises(self, tmp_path, monkeypatch):
        # The narrowed handler must not swallow control-flow exceptions:
        # a Ctrl-C mid-write propagates (after tmp-file cleanup).
        cache = ResultCache(tmp_path)
        key = content_key(x=8)

        def boom(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(diskcache.os, "replace", boom)
        import pytest
        with pytest.raises(KeyboardInterrupt):
            cache.store(key, sample_stats())
        # The interrupted temp file was cleaned up, nothing half-written.
        assert list(cache.version_dir.glob("*/*.tmp")) == []
        assert cache.load(key) is None

    def test_torn_payload_fault_site_truncates_store(self, tmp_path):
        from repro.resilience import faults
        cache = ResultCache(tmp_path)
        key = content_key(x=9)
        try:
            with faults.armed("cache.torn_payload"):
                cache.store(key, sample_stats())
        finally:
            faults.reset()
        assert cache._path(key).stat().st_size == 16
        assert cache.load(key) is None
        assert cache.quarantined == 1

    def test_clear_empties_current_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(content_key(x=6), sample_stats())
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.load(content_key(x=6)) is None


class TestSchemaToken:
    def test_token_is_deterministic(self):
        assert diskcache.schema_token() == diskcache.schema_token()
        assert len(diskcache.schema_token()) == 16

    def test_token_reflects_the_stats_field_lists(self):
        token = diskcache.schema_token()
        import dataclasses
        names = {f.name for f in dataclasses.fields(RunStats)}
        # Sanity: the token is derived from the real dataclasses, so the
        # fields it hashes include every current RunStats field.
        assert "cycles" in names and "wall_seconds" in names
        assert token == diskcache.schema_token()

    def test_content_key_folds_in_the_schema_token(self, monkeypatch):
        before = content_key(x=1)
        monkeypatch.setattr(diskcache, "schema_token",
                            lambda: "different-schema")
        after = content_key(x=1)
        assert before != after

    def test_content_key_stable_while_schema_unchanged(self):
        assert content_key(x=1, y="a") == content_key(y="a", x=1)
        assert content_key(x=1) != content_key(x=2)

    def test_schema_change_invalidates_without_version_bump(self, monkeypatch):
        key = content_key(spec="s", organization="sac")
        monkeypatch.setattr(diskcache, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        assert content_key(spec="s", organization="sac") != key
