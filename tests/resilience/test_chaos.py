"""Chaos smoke: a supervised matrix survives a worker crash, a lane
fault and a torn cache payload with zero lost results.

This is the CI resilience gate — one small sweep with all three fault
families armed at once, asserting the recovery telemetry is visible and
that every recovered result is bit-identical to a clean serial run.
"""

import pytest

from repro.analysis import clear_cache, reset_telemetry, run_matrix, telemetry
from repro.resilience import faults
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

ORGS = ["memory-side", "sm-side"]


def tiny_spec(name):
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3)
    return BenchmarkSpec(
        name=name, suite="chaos", num_ctas=8, footprint_mb=4,
        true_shared_mb=1, false_shared_mb=1, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=1),), seed=13)


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_STATE", raising=False)
    monkeypatch.delenv("REPRO_STACKED", raising=False)
    faults.reset()
    clear_cache()
    reset_telemetry()
    yield
    faults.reset()
    clear_cache()


def test_matrix_survives_crash_lane_fault_and_torn_payload(
        tmp_path, monkeypatch):
    specs = [tiny_spec("chaos-a"), tiny_spec("chaos-b")]
    # Three fault families at once:
    #  * the chaos-a stacked task's first worker dies before any work,
    #  * every sm-side stacked lane raises on its first pump (the solo
    #    re-run path is exercised in both tasks),
    #  * the first payload written to the disk cache is torn mid-write.
    monkeypatch.setenv(
        "REPRO_FAULTS",
        "worker.crash:chaos-a:memory-side+sm-side,"
        "lane.raise:sm-side@1*,"
        "cache.torn_payload@1")
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "state"))
    faults.reset()

    chaos = run_matrix(specs, ORGS, accesses_per_epoch=256,
                       cache_dir=tmp_path / "cache", n_jobs=2)
    chaos_telemetry = telemetry()

    # Zero lost results despite the crash.
    assert set(chaos) == {(s.name, o) for s in specs for o in ORGS}
    # The dead worker cost one pool respawn and one re-dispatch.
    assert chaos_telemetry.respawns == 1
    assert chaos_telemetry.retries >= 1
    # Each stacked task quarantined its sm-side lane and re-ran it solo.
    assert chaos_telemetry.quarantined_lanes == 2
    for spec in specs:
        assert chaos[(spec.name, "sm-side")].lane_quarantined == 1

    # Reload pass: the torn payload is quarantined on read, only that
    # pair re-simulates, the other three resume from the journal.
    monkeypatch.delenv("REPRO_FAULTS")
    faults.reset()
    clear_cache()
    reset_telemetry()
    reloaded = run_matrix(specs, ORGS, accesses_per_epoch=256,
                          cache_dir=tmp_path / "cache", n_jobs=1)
    reload_telemetry = telemetry()
    assert reload_telemetry.cache_quarantined == 1
    assert reload_telemetry.disk_hits == 3
    assert reload_telemetry.resumed_pairs == 3
    assert reload_telemetry.simulated == 1
    assert reload_telemetry.deduped_submissions == 1

    # Bit-identity: both recovered matrices match a clean serial run.
    clear_cache()
    reference = run_matrix(specs, ORGS, accesses_per_epoch=256, n_jobs=1)
    for pair, stats in reference.items():
        assert chaos[pair].comparable_dict() == stats.comparable_dict(), pair
        assert reloaded[pair].comparable_dict() == \
            stats.comparable_dict(), pair
