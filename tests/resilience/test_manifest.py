"""SweepManifest journal semantics: append, resume, torn-line tolerance."""

from repro.resilience.manifest import SweepManifest


def test_missing_journal_loads_empty(tmp_path):
    manifest = SweepManifest(tmp_path, "sweep1")
    assert manifest.load() == set()


def test_mark_done_round_trips(tmp_path):
    manifest = SweepManifest(tmp_path, "sweep1")
    manifest.mark_done("k1", "tiny:sac")
    manifest.mark_done("k2", "tiny:static")
    fresh = SweepManifest(tmp_path, "sweep1")
    assert fresh.load() == {"k1", "k2"}
    assert fresh.entries() == {"k1": "tiny:sac", "k2": "tiny:static"}


def test_sweeps_are_isolated_by_id(tmp_path):
    SweepManifest(tmp_path, "a").mark_done("k1")
    assert SweepManifest(tmp_path, "b").load() == set()


def test_rejournaling_is_idempotent(tmp_path):
    manifest = SweepManifest(tmp_path, "sweep1")
    manifest.mark_done("k1", "old")
    manifest.mark_done("k1", "new")
    assert manifest.load() == {"k1"}
    assert manifest.entries()["k1"] == "new"


def test_torn_trailing_line_is_skipped(tmp_path):
    manifest = SweepManifest(tmp_path, "sweep1")
    manifest.mark_done("k1")
    # A writer killed mid-append leaves a partial JSON line behind.
    with manifest.path.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "k2", "lab')
    assert manifest.load() == {"k1"}


def test_garbage_line_does_not_poison_later_entries(tmp_path):
    manifest = SweepManifest(tmp_path, "sweep1")
    manifest.mark_done("k1")
    with manifest.path.open("a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
    manifest.mark_done("k2")
    assert manifest.load() == {"k1", "k2"}


def test_discard_removes_journal(tmp_path):
    manifest = SweepManifest(tmp_path, "sweep1")
    manifest.mark_done("k1")
    manifest.discard()
    assert manifest.load() == set()
    manifest.discard()  # idempotent on a missing file
