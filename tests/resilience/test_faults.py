"""FaultPlan parsing and deterministic firing semantics."""

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultEntry, FaultPlan


@pytest.fixture(autouse=True)
def disarm():
    faults.reset()
    yield
    faults.reset()


class TestParsing:
    def test_site_only(self):
        entry = FaultEntry.parse("lane.raise")
        assert entry == FaultEntry(site="lane.raise", key=None, nth=1,
                                   count=1, value=None)

    def test_full_grammar(self):
        entry = FaultEntry.parse("worker.hang:tiny:sac@3*2=0.5")
        assert entry.site == "worker.hang"
        # The key keeps everything after the first colon.
        assert entry.key == "tiny:sac"
        assert entry.nth == 3
        assert entry.count == 2
        assert entry.value == 0.5

    def test_bare_star_means_unbounded(self):
        assert FaultEntry.parse("lane.raise:static@2*").count is None

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultEntry.parse("warp.drive")

    def test_malformed_nth_rejected(self):
        with pytest.raises(ValueError, match="malformed fault entry"):
            FaultEntry.parse("lane.raise@soon")

    def test_plan_splits_on_commas(self):
        plan = FaultPlan.parse("worker.crash, lane.raise:sac@2,")
        assert [e.site for e in plan.entries] == [
            "worker.crash", "lane.raise"]


class TestFiring:
    def test_fires_on_nth_hit_only(self):
        plan = FaultPlan.parse("lane.raise@2")
        assert plan.fire("lane.raise") is None
        assert plan.fire("lane.raise") == 1.0
        assert plan.fire("lane.raise") is None
        assert plan.fired == [("lane.raise", None, 0)]

    def test_key_restricts_matches(self):
        plan = FaultPlan.parse("lane.raise:sac")
        assert plan.fire("lane.raise", key="static") is None
        assert plan.fire("lane.raise", key="sac") == 1.0

    def test_unbounded_count_keeps_firing(self):
        plan = FaultPlan.parse("kernel.solve_error@2*")
        hits = [plan.fire("kernel.solve_error") for _ in range(5)]
        assert hits == [None, 1.0, 1.0, 1.0, 1.0]

    def test_value_and_site_default(self):
        assert FaultPlan.parse("worker.hang").fire("worker.hang") == 30.0
        assert FaultPlan.parse("worker.hang=0.2").fire("worker.hang") == 0.2

    def test_unarmed_site_never_fires(self):
        plan = FaultPlan.parse("lane.raise")
        assert plan.fire("worker.crash") is None

    def test_marker_coordination_fires_once_across_plans(self, tmp_path):
        # Two plans sharing a state dir model a parent and a respawned
        # worker: only one of them observes the crash firing.
        a = FaultPlan.parse("worker.crash", state_dir=tmp_path)
        b = FaultPlan.parse("worker.crash", state_dir=tmp_path)
        assert a.fire("worker.crash") == 1.0
        assert b.fire("worker.crash") is None

    def test_unmarked_site_refires_in_each_plan(self, tmp_path):
        a = FaultPlan.parse("lane.raise*", state_dir=tmp_path)
        b = FaultPlan.parse("lane.raise*", state_dir=tmp_path)
        assert a.fire("lane.raise") == 1.0
        assert b.fire("lane.raise") == 1.0


class TestProcessGlobal:
    def test_unarmed_by_default(self):
        assert faults.active() is None
        assert faults.fire("lane.raise") is None

    def test_armed_context_manager(self):
        with faults.armed("lane.raise:sac") as plan:
            assert faults.fire("lane.raise", key="sac") == 1.0
            assert plan.fired
        assert faults.active() is None

    def test_environment_arming(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache.torn_payload:k1")
        assert faults.fire("cache.torn_payload", key="k1") == 1.0
        # The parsed plan is cached: the hit counter persists.
        assert faults.fire("cache.torn_payload", key="k1") is None

    def test_programmatic_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "lane.raise*")
        with faults.armed("worker.crash"):
            assert faults.fire("lane.raise") is None
