"""Supervisor semantics: retries, timeouts, respawns, failure policy.

Pool tests keep payloads tiny (arithmetic, a marker file) so the suite
stays fast; deterministic crashes/hangs come from the fault sites in
``run_supervised`` armed through ``REPRO_FAULTS``.
"""

import os
from pathlib import Path

import pytest

from repro.resilience import faults
from repro.resilience.supervisor import (
    SupervisedTask,
    Supervisor,
    TaskFailedError,
    TaskTimeoutError,
    default_retries,
    default_task_timeout,
)


@pytest.fixture(autouse=True)
def disarm(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_STATE", raising=False)
    faults.reset()
    yield
    faults.reset()


def _double(x):
    return x * 2


def _fail_once_then_succeed(marker):
    """Fails on the first call (any process), succeeds afterwards."""
    path = Path(marker)
    try:
        with open(path, "x"):
            pass
    except FileExistsError:
        return "recovered"
    raise RuntimeError("first attempt fails")


def _always_fail(label):
    raise RuntimeError(f"{label} is broken")


def _quick(tag):
    return tag


class TestEnvKnobs:
    def test_default_retries(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert default_retries() == 2
        monkeypatch.setenv("REPRO_RETRIES", "5")
        assert default_retries() == 5
        monkeypatch.setenv("REPRO_RETRIES", "nope")
        assert default_retries() == 2

    def test_default_task_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert default_task_timeout() is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert default_task_timeout() == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert default_task_timeout() is None


class TestSerial:
    def test_runs_and_keys_results(self):
        sup = Supervisor(max_workers=1)
        results = sup.run([
            SupervisedTask("a", "a", _double, (2,)),
            SupervisedTask("b", "b", _double, (5,)),
        ])
        assert results == {"a": 4, "b": 10}

    def test_retry_then_success(self, tmp_path):
        sup = Supervisor(max_workers=1, backoff_base=0.001)
        results = sup.run([SupervisedTask(
            "t", "t", _fail_once_then_succeed, (str(tmp_path / "m"),))])
        assert results == {"t": "recovered"}
        assert sup.telemetry.retries == 1

    def test_terminal_failure_completes_siblings_first(self):
        delivered = []
        sup = Supervisor(max_workers=1, retries=0,
                         on_result=lambda t, r: delivered.append(t.key))
        with pytest.raises(TaskFailedError) as excinfo:
            sup.run([
                SupervisedTask("bad", "bad", _always_fail, ("bad",)),
                SupervisedTask("ok", "ok", _double, (3,)),
            ])
        # The good task still ran and was delivered before the raise.
        assert delivered == ["ok"]
        assert set(excinfo.value.failures) == {"bad"}

    def test_duplicate_keys_run_once(self):
        calls = []
        sup = Supervisor(max_workers=1,
                         on_result=lambda t, r: calls.append(t.key))
        results = sup.run([
            SupervisedTask("same", "first", _double, (1,)),
            SupervisedTask("same", "second", _double, (1,)),
        ])
        assert results == {"same": 2}
        assert calls == ["same"]

    def test_on_result_fires_incrementally(self):
        seen = []
        sup = Supervisor(max_workers=1,
                         on_result=lambda t, r: seen.append((t.key, r)))
        sup.run([SupervisedTask("a", "a", _double, (4,))])
        assert seen == [("a", 8)]


class TestPool:
    def test_pool_matches_serial(self):
        sup = Supervisor(max_workers=2)
        results = sup.run([
            SupervisedTask("a", "a", _double, (1,)),
            SupervisedTask("b", "b", _double, (2,)),
            SupervisedTask("c", "c", _double, (3,)),
        ])
        assert results == {"a": 2, "b": 4, "c": 6}
        assert sup.telemetry.respawns == 0

    def test_worker_crash_respawns_and_completes(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.crash:a")
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "state"))
        faults.reset()
        sup = Supervisor(max_workers=2, backoff_base=0.001)
        results = sup.run([
            SupervisedTask("a", "a", _quick, ("a",)),
            SupervisedTask("b", "b", _quick, ("b",)),
        ])
        assert results == {"a": "a", "b": "b"}
        assert sup.telemetry.respawns == 1

    def test_worker_hang_times_out_and_recovers(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.hang:a=2.0")
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "state"))
        faults.reset()
        sup = Supervisor(max_workers=2, timeout=0.4, backoff_base=0.001)
        results = sup.run([
            SupervisedTask("a", "a", _quick, ("a",)),
            SupervisedTask("b", "b", _quick, ("b",)),
        ])
        assert results == {"a": "a", "b": "b"}
        assert sup.telemetry.timeouts >= 1
        assert sup.telemetry.respawns >= 1
        assert sup.telemetry.retries >= 1

    def test_pool_terminal_failure_raises_with_label(self):
        sup = Supervisor(max_workers=2, retries=0, backoff_base=0.001)
        with pytest.raises(TaskFailedError) as excinfo:
            sup.run([
                SupervisedTask("bad", "bad", _always_fail, ("bad",)),
                SupervisedTask("ok", "ok", _double, (7,)),
            ])
        assert set(excinfo.value.failures) == {"bad"}

    def test_timeout_error_type_reaches_failures(self, tmp_path,
                                                 monkeypatch):
        # Unbounded hang arming (no marker claim consumed by a success
        # path) with zero retries: the task must fail as a timeout.
        monkeypatch.setenv("REPRO_FAULTS", "worker.hang:a*=1.0")
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "state"))
        faults.reset()
        sup = Supervisor(max_workers=2, timeout=0.3, retries=0,
                         backoff_base=0.001)
        with pytest.raises(TaskFailedError) as excinfo:
            sup.run([
                SupervisedTask("a", "a", _quick, ("a",)),
                SupervisedTask("b", "b", _quick, ("b",)),
            ])
        assert isinstance(excinfo.value.failures["a"], TaskTimeoutError)
