"""Unit tests for the design-space presets (Figure 14 configurations)."""

import pytest

from repro.arch import (
    baseline,
    inter_chip_sweep,
    llc_capacity_sweep,
    memory_interface_sweep,
    with_chip_count,
    with_coherence,
    with_inter_chip_bandwidth,
    with_llc_capacity_scale,
    with_memory_interface,
    with_page_size,
    with_sectored_llc,
)


class TestInterChipBandwidth:
    def test_baseline_pair_bandwidth_is_96(self):
        config = with_inter_chip_bandwidth(baseline(), 96)
        assert config.inter_chip.pair_bw(4) == pytest.approx(96.0)

    def test_pcie_point(self):
        config = with_inter_chip_bandwidth(baseline(), 48)
        assert config.inter_chip.pair_bw(4) == pytest.approx(48.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            with_inter_chip_bandwidth(baseline(), 0)

    def test_sweep_is_labelled_and_starred(self):
        sweep = inter_chip_sweep()
        labels = [label for label, _ in sweep]
        assert any("*" in label for label in labels)
        assert len(sweep) == 5


class TestMemoryInterface:
    def test_gddr5_total_bandwidth(self):
        config = with_memory_interface(baseline(), "GDDR5")
        assert config.total_memory_bw == pytest.approx(1000.0)
        assert config.chip.memory.interface == "GDDR5"

    def test_hbm2_total_bandwidth(self):
        config = with_memory_interface(baseline(), "HBM2")
        assert config.total_memory_bw == pytest.approx(2800.0)

    def test_unknown_interface_raises(self):
        with pytest.raises(ValueError):
            with_memory_interface(baseline(), "DDR3")

    def test_sweep_covers_three_generations(self):
        assert len(memory_interface_sweep()) == 3


class TestLLCCapacity:
    def test_doubling(self):
        config = with_llc_capacity_scale(baseline(), 2.0)
        assert config.total_llc_bytes == 2 * baseline().total_llc_bytes

    def test_halving(self):
        config = with_llc_capacity_scale(baseline(), 0.5)
        assert config.total_llc_bytes == baseline().total_llc_bytes // 2

    def test_sweep_default_factors(self):
        assert len(llc_capacity_sweep()) == 3


class TestChipCount:
    def test_two_chip_config_keeps_total_inter_chip_bandwidth(self):
        base = baseline()
        two = with_chip_count(base, 2)
        assert two.num_chips == 2
        assert two.total_inter_chip_bw == pytest.approx(
            base.total_inter_chip_bw)
        # Per-link bandwidth doubles (NVLink-style scaling).
        assert two.inter_chip.link_bw_bytes_per_cycle == pytest.approx(
            2 * base.inter_chip.link_bw_bytes_per_cycle)


class TestOtherPresets:
    def test_sectored_llc(self):
        config = with_sectored_llc(baseline())
        assert config.chip.llc_slice.sectored
        assert config.chip.llc_slice.sectors_per_line == 4

    def test_hardware_coherence(self):
        config = with_coherence(baseline(), "hardware")
        assert config.coherence.protocol == "hardware"

    def test_page_size(self):
        config = with_page_size(baseline(), 65536)
        assert config.page_size == 65536
