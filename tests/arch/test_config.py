"""Unit tests for the architecture configuration (Table 3 baseline)."""

import pytest

from repro.arch import (
    CacheConfig,
    ChipConfig,
    CoherenceConfig,
    ConfigError,
    InterChipConfig,
    MemoryConfig,
    NoCConfig,
    SACConfig,
    SystemConfig,
    baseline,
)

MB = 1024 * 1024


class TestCacheConfig:
    def test_baseline_llc_slice_geometry(self):
        llc = baseline().chip.llc_slice
        assert llc.size_bytes == 256 * 1024
        assert llc.associativity == 16
        assert llc.line_size == 128
        assert llc.num_sets == 128
        assert llc.num_lines == 2048

    def test_rejects_non_power_of_two_line_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, associativity=2, line_size=96)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, associativity=3, line_size=128)

    def test_sectored_needs_multiple_sectors(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4096, associativity=2, line_size=128,
                        sectored=True, sectors_per_line=1)

    def test_sector_size(self):
        cache = CacheConfig(size_bytes=4096, associativity=2, line_size=128,
                            sectored=True, sectors_per_line=4)
        assert cache.sector_size == 32

    def test_scaled_halves_sets(self):
        llc = baseline().chip.llc_slice
        half = llc.scaled(0.5)
        assert half.num_sets == llc.num_sets // 2
        assert half.associativity == llc.associativity
        assert half.line_size == llc.line_size

    def test_scaled_never_drops_below_one_set(self):
        tiny = CacheConfig(size_bytes=1024, associativity=4, line_size=128)
        assert tiny.scaled(0.001).num_sets == 1


class TestNoCConfig:
    def test_baseline_is_38_by_22_crossbar(self):
        noc = baseline().chip.noc
        assert noc.input_ports == 38
        assert noc.output_ports == 22

    def test_port_bandwidth_share(self):
        noc = NoCConfig()
        assert noc.port_bw_bytes_per_cycle == pytest.approx(4096 / 16)

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigError):
            NoCConfig(sm_ports=0)


class TestInterChipConfig:
    def test_baseline_ring_pair_bandwidth(self):
        inter = baseline().inter_chip
        # 6 links/chip split over 2 neighbours: 3 links x 32 B/cyc = 96.
        assert inter.pair_bw(4) == pytest.approx(96.0)

    def test_single_chip_has_infinite_pair_bandwidth(self):
        assert InterChipConfig().pair_bw(1) == float("inf")

    def test_fully_connected_divides_by_peers(self):
        inter = InterChipConfig(topology="fully-connected")
        assert inter.pair_bw(4) == pytest.approx(6 * 32 / 3)

    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigError):
            InterChipConfig(topology="mesh")


class TestSystemConfig:
    def test_baseline_matches_table3(self):
        config = baseline()
        assert config.num_chips == 4
        assert config.total_sms == 256
        assert config.total_llc_bytes == 16 * MB
        assert config.total_llc_slices == 64
        # 1.75 TB/s DRAM and 768 GB/s of inter-chip links at 1 GHz.
        assert config.total_memory_bw == pytest.approx(1750.0)
        assert config.total_inter_chip_bw == pytest.approx(768.0)
        assert config.page_size == 4096
        assert config.line_size == 128

    def test_describe_reports_key_figures(self):
        summary = baseline().describe()
        assert summary["chips"] == 4
        assert summary["llc_total_mb"] == 16
        assert summary["memory_interface"] == "GDDR6"

    def test_rejects_bad_page_allocation(self):
        with pytest.raises(ConfigError):
            SystemConfig(page_allocation="static")

    def test_chip_requires_matching_noc_ports(self):
        with pytest.raises(ConfigError):
            ChipConfig(noc=NoCConfig(sm_ports=10))

    def test_llc_and_l1_line_sizes_must_match(self):
        with pytest.raises(ConfigError):
            ChipConfig(l1=CacheConfig(size_bytes=128 * 1024,
                                      associativity=8, line_size=64))


class TestSACConfig:
    def test_defaults_match_paper(self):
        sac = SACConfig()
        assert sac.profile_window_cycles == 2000
        assert sac.theta == 0.05
        assert sac.crd_sets == 8
        assert sac.crd_ways == 16

    def test_reprofile_interval_must_exceed_window(self):
        with pytest.raises(ConfigError):
            SACConfig(reprofile_interval_cycles=1000)


class TestCoherenceConfig:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigError):
            CoherenceConfig(protocol="mesi")

    def test_memory_config_chip_bandwidth(self):
        memory = MemoryConfig()
        assert memory.chip_bw() == pytest.approx(1750.0 / 4)
