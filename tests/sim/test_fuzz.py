"""Randomized end-to-end invariants over the full engine (hypothesis).

Small random workload specs run through every organization; the
invariants checked are the accounting identities every figure relies
on, so this acts as a catch-all harness for the whole stack.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import baseline, with_coherence
from repro.sim import simulate
from repro.sim.run import ORGANIZATIONS
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

SCALE = 1.0 / 64


@st.composite
def workload_specs(draw):
    wt = draw(st.floats(0.0, 1.0))
    wf = draw(st.floats(0.0, 1.0 - wt))
    wp = 1.0 - wt - wf
    true_mb = draw(st.floats(0.25, 4.0))
    false_mb = draw(st.floats(0.25, 4.0))
    private_mb = draw(st.floats(0.5, 8.0))
    phase = PhaseSpec(
        weight_true=wt, weight_false=wf, weight_private=wp,
        hot_fraction=draw(st.floats(0.05, 1.0)),
        hot_weight=draw(st.floats(0.0, 1.0)),
        write_fraction=draw(st.floats(0.0, 0.6)),
        intensity=draw(st.floats(500.0, 9000.0)),
        true_affinity=draw(st.floats(0.0, 0.95)))
    return BenchmarkSpec(
        name="fuzz", suite="test", num_ctas=16,
        footprint_mb=true_mb + false_mb + private_mb,
        true_shared_mb=true_mb, false_shared_mb=false_mb,
        preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase,
                            epochs=draw(st.integers(1, 3))),),
        iterations=draw(st.integers(1, 2)),
        seed=draw(st.integers(0, 2 ** 31 - 1)))


@given(workload_specs(), st.sampled_from(ORGANIZATIONS + ("ladm",)))
@settings(max_examples=60, deadline=None)
def test_accounting_invariants(spec, organization):
    stats = simulate(spec, organization, scale=SCALE,
                     accesses_per_epoch=256)
    # One response per access; one top-level lookup per access.
    assert sum(stats.responses_by_origin.values()) == stats.accesses
    assert stats.llc_lookups == stats.accesses
    assert 0 <= stats.llc_hits <= stats.llc_lookups
    # Time moves forward and every epoch is attributed to a bottleneck.
    # Non-epoch time is exactly the per-kernel overhead charges (which
    # include flush cycles — flush_cycles is a subset, not additive).
    assert stats.cycles > 0
    overheads = sum(k.reconfig_cycles for k in stats.kernels)
    attributed = sum(stats.bottleneck_cycles.values())
    assert abs(attributed + overheads - stats.cycles) < 1e-6 * stats.cycles \
        + 1e-6
    assert stats.flush_cycles <= overheads + 1e-9
    # Allocation fractions are a partition of the resident lines.
    assert 0.0 <= stats.llc_remote_fraction <= 1.0
    if stats.llc_local_fraction or stats.llc_remote_fraction:
        total = stats.llc_local_fraction + stats.llc_remote_fraction
        assert abs(total - 1.0) < 1e-9
    # Kernel records tile the run.
    assert sum(k.accesses for k in stats.kernels) == stats.accesses


@given(workload_specs())
@settings(max_examples=20, deadline=None)
def test_memory_side_never_caches_remote_data(spec):
    stats = simulate(spec, "memory-side", scale=SCALE,
                     accesses_per_epoch=256)
    assert stats.llc_remote_fraction == 0.0
    assert stats.responses_by_origin["remote_llc"] >= 0


@given(workload_specs())
@settings(max_examples=20, deadline=None)
def test_sm_side_never_hits_remote_llcs(spec):
    stats = simulate(spec, "sm-side", scale=SCALE, accesses_per_epoch=256)
    assert stats.responses_by_origin["remote_llc"] == 0


@given(workload_specs())
@settings(max_examples=15, deadline=None)
def test_sac_decisions_are_always_valid(spec):
    stats = simulate(spec, "sac", scale=SCALE, accesses_per_epoch=256)
    for kernel in stats.kernels:
        assert kernel.organization in ("memory-side", "sm-side")


@given(workload_specs())
@settings(max_examples=10, deadline=None)
def test_hardware_coherence_accounting(spec):
    spec = dataclasses.replace(spec, name="fuzz-hw")
    config = with_coherence(baseline(), "hardware")
    stats = simulate(spec, "sm-side", config=config, scale=SCALE,
                     accesses_per_epoch=256)
    assert stats.coherence_invalidations >= 0
    assert stats.coherence_bytes >= 0
    assert sum(stats.responses_by_origin.values()) == stats.accesses
