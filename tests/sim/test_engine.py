"""Integration tests for the simulation engine."""

import numpy as np
import pytest

from repro.arch import baseline, with_coherence
from repro.sim import EngineParams, SimulationEngine, make_organization
from repro.sim.run import scaled_config
from repro.workloads import (
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
    TraceGenerator,
)

SCALE = 1.0 / 64


def tiny_spec(weight_true=0.4, weight_false=0.3, weight_private=0.3,
              epochs=2, iterations=1, write_fraction=0.25, **phase_kwargs):
    phase = PhaseSpec(weight_true=weight_true, weight_false=weight_false,
                      weight_private=weight_private,
                      write_fraction=write_fraction, **phase_kwargs)
    return BenchmarkSpec(
        name="tiny", suite="test", num_ctas=16, footprint_mb=8,
        true_shared_mb=2, false_shared_mb=2, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=epochs),),
        iterations=iterations, seed=11)


def run_engine(organization="memory-side", spec=None, config=None,
               accesses=512, params=None):
    run_config = config or scaled_config(baseline(), SCALE)
    org = make_organization(organization, run_config) \
        if isinstance(organization, str) else organization
    engine = SimulationEngine(run_config, org, params=params)
    generator = TraceGenerator(
        spec or tiny_spec(), num_chips=run_config.num_chips,
        clusters_per_chip=run_config.chip.num_clusters,
        line_size=run_config.line_size, page_size=run_config.page_size,
        accesses_per_epoch_per_chip=accesses, scale=SCALE)
    stats = engine.run(generator.kernels(), benchmark="tiny")
    return engine, stats


class TestAccounting:
    def test_every_access_gets_exactly_one_response(self):
        _engine, stats = run_engine()
        assert sum(stats.responses_by_origin.values()) == stats.accesses
        assert stats.llc_lookups == stats.accesses

    def test_cycles_are_at_least_the_compute_floor(self):
        _engine, stats = run_engine()
        floors = sum(k.cycles for k in stats.kernels)
        assert stats.cycles == pytest.approx(floors)
        assert stats.cycles > 0

    def test_memory_side_serves_remote_requests_remotely(self):
        _engine, stats = run_engine("memory-side")
        assert stats.responses_by_origin["remote_llc"] > 0
        assert stats.inter_chip_bytes > 0

    def test_sm_side_serves_hits_locally(self):
        _engine, stats = run_engine("sm-side")
        assert stats.responses_by_origin["remote_llc"] == 0
        assert stats.responses_by_origin["local_llc"] > 0

    def test_bottleneck_attribution_covers_all_cycles(self):
        _engine, stats = run_engine()
        attributed = sum(stats.bottleneck_cycles.values())
        epoch_cycles = stats.cycles - stats.flush_cycles - sum(
            k.reconfig_cycles for k in stats.kernels)
        assert attributed == pytest.approx(epoch_cycles, rel=0.01)

    def test_slice_requests_are_recorded_globally(self):
        config = scaled_config(baseline(), SCALE)
        _engine, stats = run_engine("memory-side", config=config)
        assert len(stats.slice_requests) == config.total_llc_slices
        assert sum(stats.slice_requests) >= stats.accesses

    def test_determinism(self):
        _e1, a = run_engine()
        _e2, b = run_engine()
        assert a.cycles == b.cycles
        assert a.llc_hits == b.llc_hits
        assert a.responses_by_origin == b.responses_by_origin


class TestCoherence:
    def test_sm_side_flushes_at_kernel_boundaries(self):
        spec = tiny_spec(iterations=3)
        _engine, mem = run_engine("memory-side", spec=spec)
        _engine, sm = run_engine("sm-side", spec=spec)
        assert mem.flush_cycles == 0.0
        assert sm.flush_cycles > 0.0

    def test_hardware_coherence_invalidates_replicas(self):
        config = with_coherence(scaled_config(baseline(), SCALE), "hardware")
        spec = tiny_spec(weight_true=0.9, weight_false=0.0,
                         weight_private=0.1, write_fraction=0.4)
        _engine, stats = run_engine("sm-side", spec=spec, config=config)
        assert stats.coherence_invalidations > 0
        assert stats.coherence_bytes > 0

    def test_software_coherence_has_no_invalidation_traffic(self):
        _engine, stats = run_engine("sm-side")
        assert stats.coherence_invalidations == 0


class TestAllocationSampling:
    def test_memory_side_caches_only_local_data(self):
        _engine, stats = run_engine("memory-side")
        assert stats.llc_remote_fraction == pytest.approx(0.0)
        assert stats.llc_local_fraction == pytest.approx(1.0)

    def test_sm_side_caches_remote_data(self):
        _engine, stats = run_engine("sm-side")
        assert stats.llc_remote_fraction > 0.2


class TestPartitionedOrganizations:
    def test_static_respects_way_split(self):
        config = scaled_config(baseline(), SCALE)
        engine, stats = run_engine("static", config=config)
        ways = engine.llc[0][0].partition_ways
        total = config.chip.llc_slice.associativity
        assert ways is not None
        assert sum(ways.values()) == total
        assert ways[1] == total // 2

    def test_dynamic_adapts_within_bounds(self):
        config = scaled_config(baseline(), SCALE)
        spec = tiny_spec(epochs=6, iterations=2)
        org = make_organization("dynamic", config)
        _engine, stats = run_engine(org, spec=spec, config=config)
        total = config.chip.llc_slice.associativity
        assert org.min_remote_ways <= org.remote_ways \
            <= total - org.min_local_ways


class TestL1Modelling:
    def test_l1_filters_llc_traffic(self):
        params = EngineParams(model_l1=True)
        spec = tiny_spec(hot_fraction=0.05, hot_weight=0.95)
        _engine, with_l1 = run_engine("memory-side", spec=spec,
                                      params=params)
        _engine, without = run_engine("memory-side", spec=spec)
        assert with_l1.llc_lookups < without.llc_lookups

    def test_writes_are_write_through(self):
        params = EngineParams(model_l1=True)
        spec = tiny_spec(write_fraction=1.0)
        _engine, stats = run_engine("memory-side", spec=spec, params=params)
        # All writes reach the LLC despite the L1.
        assert stats.llc_lookups == stats.accesses


class TestEngineContext:
    def test_charge_cycles_lands_in_kernel_stats(self):
        engine, _stats = run_engine()
        engine.charge_cycles(0)  # zero is allowed
        with pytest.raises(ValueError):
            engine.charge_cycles(-1)

    def test_flush_llc_dirty_only_keeps_clean_lines(self):
        engine, _stats = run_engine("memory-side",
                                    spec=tiny_spec(write_fraction=0.5))
        resident_before = sum(c.occupancy()
                              for chips in engine.llc for c in chips)
        assert resident_before > 0
        engine.flush_llc(dirty_only=True)
        resident_after = sum(c.occupancy()
                             for chips in engine.llc for c in chips)
        assert 0 < resident_after < resident_before
        # No dirty lines remain anywhere.
        for chips in engine.llc:
            for cache in chips:
                assert all(not line.dirty
                           for _a, line in cache.resident_lines())

    def test_vectorized_slice_hash_matches_scalar(self):
        engine, _stats = run_engine()
        addrs = np.array([0, 128, 4096, 123456, 999936], dtype=np.int64)
        vectorized = engine._vectorized_slices(addrs).tolist()
        scalar = [engine.mapping.llc_slice_of(int(a)) for a in addrs]
        assert vectorized == scalar

    def test_vectorized_channel_hash_matches_scalar(self):
        engine, _stats = run_engine()
        addrs = np.array([0, 128, 4096, 123456, 999936], dtype=np.int64)
        vectorized = engine._vectorized_channels(addrs).tolist()
        scalar = [engine.mapping.channel_of(int(a)) for a in addrs]
        assert vectorized == scalar


class TestEngineParamsValidation:
    @pytest.mark.parametrize("field,value", [
        ("request_bytes", 0),
        ("request_bytes", -8),
        ("response_header_bytes", -1),
        ("write_data_bytes", -32),
        ("max_outstanding_per_chip", 0),
    ])
    def test_invalid_values_are_rejected(self, field, value):
        with pytest.raises(ValueError):
            EngineParams(**{field: value})

    @pytest.mark.parametrize("field,value", [
        ("response_header_bytes", 0),
        ("write_data_bytes", 0),
        ("max_outstanding_per_chip", 1),
    ])
    def test_boundary_values_are_accepted(self, field, value):
        assert getattr(EngineParams(**{field: value}), field) == value

    def test_error_names_the_field(self):
        with pytest.raises(ValueError, match="write_data_bytes"):
            EngineParams(write_data_bytes=-1)
        with pytest.raises(ValueError, match="cannot be negative"):
            EngineParams(response_header_bytes=-4)


class TestLegLatency:
    def test_local_leg_is_a_request_response_pair(self):
        # The local SM->LLC leg pays one crossbar traversal each way,
        # symmetric with the remote leg's 2 * latency_noc + ring hops.
        engine, _stats = run_engine()
        latency = engine._charge_leg(src=0, dst=0, slice_index=0,
                                     req_bytes=8, rsp_bytes=136,
                                     skip_crossbar=False)
        assert latency == 2 * engine.params.latency_noc

    def test_remote_leg_adds_ring_hops(self):
        engine, _stats = run_engine()
        latency = engine._charge_leg(src=0, dst=1, slice_index=0,
                                     req_bytes=8, rsp_bytes=136,
                                     skip_crossbar=False)
        hops = engine.ring.hops(0, 1)
        assert latency == (2 * engine.params.latency_noc
                           + hops * engine.params.latency_ring_hop)
