"""Differential tests for stacked multi-config sweeps (repro.sim.stacked).

The load-bearing contract: every lane of ``simulate_stacked`` must be
bit-identical (``RunStats.comparable_dict``) to its standalone
``simulate`` run — the shared tag store, the grouped driver and the
per-lane charge accumulators are pure execution-path changes.
"""

import pytest

from repro.arch import baseline, presets
from repro.resilience import faults
from repro.sim import (
    ORGANIZATIONS,
    EngineParams,
    make_organization,
    simulate,
    simulate_stacked,
)
from repro.sim.run import scaled_config
from repro.sim.stats import TELEMETRY_FIELDS
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

SCALE = 1.0 / 64
DENSITY = 512


def tiny_spec(name="stacked-tiny", epochs=4, iterations=1):
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3,
                      write_fraction=0.25)
    return BenchmarkSpec(
        name=name, suite="test", num_ctas=16, footprint_mb=8,
        true_shared_mb=2, false_shared_mb=2, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=epochs),),
        iterations=iterations, seed=11)


def standalone(spec, organization, config=None, params=None):
    return simulate(spec, organization, config=config, scale=SCALE,
                    accesses_per_epoch=DENSITY, params=params)


class TestDifferentialMatrix:
    def test_all_five_organizations_bit_identical(self):
        spec = tiny_spec()
        result = simulate_stacked(spec, list(ORGANIZATIONS), scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        assert [s.organization for s in result.stats] == list(ORGANIZATIONS)
        for org, stats in zip(ORGANIZATIONS, result.stats):
            solo = standalone(spec, org)
            assert stats.comparable_dict() == solo.comparable_dict(), org

    def test_dynamic_lane_repartitions_mid_stream(self):
        # The equality above must hold *through* a DynamicLLC epoch
        # repartition, not just on runs where the partition sat still.
        # Prebuilt organizations expose the final way split to prove the
        # repartition actually happened in both executions.
        spec = tiny_spec(name="stacked-dyn", epochs=8, iterations=2)
        config = scaled_config(baseline(), SCALE)
        stacked_org = make_organization("dynamic", config)
        solo_org = make_organization("dynamic", config)
        result = simulate_stacked(spec, ["memory-side", stacked_org],
                                  scale=SCALE, accesses_per_epoch=DENSITY)
        solo = standalone(spec, solo_org)
        initial = config.chip.llc_slice.associativity // 2
        assert stacked_org.remote_ways != initial
        assert stacked_org.remote_ways == solo_org.remote_ways
        assert result.stats[1].comparable_dict() == solo.comparable_dict()

    def test_single_lane_matches_standalone(self):
        spec = tiny_spec(name="stacked-single")
        result = simulate_stacked(spec, ["sac"], scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        solo = standalone(spec, "sac")
        assert result.stats[0].comparable_dict() == solo.comparable_dict()
        assert result.telemetry.stacked_lanes == 0
        assert result.telemetry.solo_lanes == 1

    def test_unvectorized_lanes_run_solo_but_identical(self):
        spec = tiny_spec(name="stacked-scalar")
        params = EngineParams(vectorized=False)
        orgs = ["memory-side", "sm-side"]
        result = simulate_stacked(spec, orgs, scale=SCALE,
                                  accesses_per_epoch=DENSITY, params=params)
        assert result.telemetry.banks == 0
        assert result.telemetry.solo_lanes == 2
        for org, stats in zip(orgs, result.stats):
            solo = standalone(spec, org, params=params)
            assert stats.comparable_dict() == solo.comparable_dict()


class TestMultiConfigLanes:
    def test_fig14_style_capacity_sweep(self):
        # Same organization, varying configs (the fig14 shape): lanes
        # with matching scaled LLC geometry share a bank, the odd one
        # out runs solo — all three still bit-identical to standalone.
        spec = tiny_spec(name="stacked-fig14")
        base = baseline()
        big = presets.with_llc_capacity_scale(base, 2.0)
        configs = [base, base, big]
        orgs = ["memory-side", "sm-side", "memory-side"]
        result = simulate_stacked(spec, orgs, configs=configs, scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        assert result.telemetry.banks == 1
        assert result.telemetry.stacked_lanes == 2
        assert result.telemetry.solo_lanes == 1
        for org, config, stats in zip(orgs, configs, result.stats):
            solo = standalone(spec, org, config=config)
            assert stats.comparable_dict() == solo.comparable_dict()

    def test_configs_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="2 entries for 1"):
            simulate_stacked(tiny_spec(), ["memory-side"],
                             configs=[baseline(), baseline()])

    def test_trace_shape_mismatch_raises(self):
        two_chips = presets.with_chip_count(baseline(), 2)
        assert two_chips.num_chips != baseline().num_chips
        with pytest.raises(ValueError, match="trace shape"):
            simulate_stacked(tiny_spec(), ["memory-side", "sm-side"],
                             configs=[baseline(), two_chips])

    def test_empty_lane_list_raises(self):
        with pytest.raises(ValueError, match="at least one lane"):
            simulate_stacked(tiny_spec(), [])


class TestStackedTelemetry:
    def test_counters_describe_the_dispatch(self):
        spec = tiny_spec(name="stacked-tele")
        result = simulate_stacked(spec, list(ORGANIZATIONS), scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        tele = result.telemetry
        assert tele.lanes == 5
        assert tele.stacked_lanes == 5
        assert tele.solo_lanes == 0
        assert tele.banks == 1
        # One grouped + at most one staged call per round beats one call
        # per lane per epoch by construction.
        assert 0 < tele.bank_invocations < 5 * sum(
            k.epochs * spec.iterations for k in spec.kernels)
        assert tele.probe_seconds >= 0.0
        assert tele.wall_seconds > 0.0

    def test_per_lane_stats_carry_stacked_counters(self):
        spec = tiny_spec(name="stacked-lane-tele")
        result = simulate_stacked(spec, ["memory-side", "sm-side"],
                                  scale=SCALE, accesses_per_epoch=DENSITY)
        for stats in result.stats:
            assert stats.stacked_lanes == 2
            assert stats.stacked_probe_calls > 0
            assert stats.wall_seconds > 0.0

    def test_new_fields_are_registered_telemetry(self):
        # comparable_dict must keep excluding them (they legitimately
        # differ between a stacked lane and its standalone run).
        assert "stacked_lanes" in TELEMETRY_FIELDS
        assert "stacked_probe_calls" in TELEMETRY_FIELDS
        assert "stacked_shared_streams" in TELEMETRY_FIELDS


class TestSharedEncodings:
    def test_five_org_sweep_shares_streams(self):
        # The tentpole contract: one encoding per unique (set, tag)
        # stream per round, replayed per lane — so replays must exceed
        # encodings, and lanes must see shared-stream rounds.
        spec = tiny_spec(name="stacked-share")
        result = simulate_stacked(spec, list(ORGANIZATIONS), scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        tele = result.telemetry
        assert tele.shared_encodings > 0
        assert tele.shared_replays > tele.shared_encodings
        assert sum(s.stacked_shared_streams > 0 for s in result.stats) >= 2
        for org, stats in zip(ORGANIZATIONS, result.stats):
            solo = standalone(spec, org)
            assert stats.comparable_dict() == solo.comparable_dict(), org

    def test_mixed_partition_caps_share_one_stream(self):
        # Two static lanes with different way splits replay the same
        # stream against different capacity vectors.
        spec = tiny_spec(name="stacked-caps")
        config = scaled_config(baseline(), SCALE)
        fractions = (0.25, 0.5)
        orgs = [make_organization("static", config,
                                  remote_way_fraction=f)
                for f in fractions]
        result = simulate_stacked(spec, orgs, scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        assert result.telemetry.duplicate_lanes == 0
        assert result.telemetry.shared_encodings > 0
        assert result.telemetry.shared_replays > \
            result.telemetry.shared_encodings
        for f, stats in zip(fractions, result.stats):
            solo = standalone(spec, make_organization(
                "static", config, remote_way_fraction=f))
            assert stats.comparable_dict() == solo.comparable_dict()

    def test_sectored_lanes_share_while_plain_runs_apart(self):
        # Sectored lanes share one sectored bank (sector verdicts ride
        # the shared encoding); the plain lane keeps its own geometry.
        spec = tiny_spec(name="stacked-sector")
        sectored = presets.with_sectored_llc(baseline())
        configs = [sectored, sectored, baseline()]
        orgs = ["memory-side", "sm-side", "memory-side"]
        result = simulate_stacked(spec, orgs, configs=configs, scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        assert result.telemetry.banks == 1
        assert result.telemetry.stacked_lanes == 2
        assert result.telemetry.solo_lanes == 1
        assert result.telemetry.shared_encodings > 0
        for org, config, stats in zip(orgs, configs, result.stats):
            solo = standalone(spec, org, config=config)
            assert stats.comparable_dict() == solo.comparable_dict()

    def test_fallback_lane_rides_with_shared_lanes(self):
        # A lane whose config forces the per-access path (hardware
        # coherence) joins the drive without disturbing the other
        # lanes' stream sharing.
        spec = tiny_spec(name="stacked-fallback")
        hw = presets.with_coherence(baseline(), "hardware")
        configs = [baseline(), baseline(), hw]
        orgs = ["memory-side", "sm-side", "sm-side"]
        result = simulate_stacked(spec, orgs, configs=configs, scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        assert result.telemetry.shared_encodings > 0
        assert result.stats[2].fast_epochs == 0
        for org, config, stats in zip(orgs, configs, result.stats):
            solo = standalone(spec, org, config=config)
            assert stats.comparable_dict() == solo.comparable_dict()


class TestLaneBatchedReplay:
    """The lane-major replay kernel and the vectorized repartition drain.

    The differential matrix above exercises mid-stream repartitions,
    shared encodings and sectored lanes separately; this class stacks
    all three into the *same* rounds and asserts the sweep never leaves
    the vectorized path — ``lane_batched_rounds`` counts fused kernel
    passes and ``set_replay_batches`` stays zero because the
    occupancy-surplus drain absorbs the over-allotment that used to
    demote whole rows to the ``_SetReplay`` interpreter.
    """

    def test_repartition_with_shared_and_sectored_lanes_in_one_round(self):
        spec = tiny_spec(name="stacked-lane-batch", epochs=8, iterations=2)
        base = baseline()
        sectored = presets.with_sectored_llc(base)
        config = scaled_config(base, SCALE)
        sconfig = scaled_config(sectored, SCALE)
        # The repartitioning dynamic lane shares its staged stream with
        # the static lane (lane-batched rounds spanning the repartition
        # epochs), the sm-side/sac pair shares grouped rounds, and two
        # differently-partitioned static instances share the sectored
        # bank's staged stream — all in the same driver rounds.
        stacked_org = make_organization("dynamic", config)
        orgs = ["memory-side", "sm-side", stacked_org, "static", "sac",
                make_organization("static", sconfig,
                                  remote_way_fraction=0.25),
                make_organization("static", sconfig,
                                  remote_way_fraction=0.5)]
        configs = [base] * 5 + [sectored, sectored]
        result = simulate_stacked(spec, orgs, configs=configs, scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        tele = result.telemetry
        assert tele.banks == 2
        assert tele.stacked_lanes == 7
        # The repartition genuinely happened mid-stream...
        initial = config.chip.llc_slice.associativity // 2
        assert stacked_org.remote_ways != initial
        # ...and the whole sweep still resolved on fused kernel passes:
        # lane-batched rounds fired in every lane (both banks), the
        # stream-order interpreter never.
        assert tele.lane_batched_rounds > 0
        assert tele.set_replay_batches == 0
        assert tele.shared_encodings > 0
        for stats in result.stats:
            assert stats.set_replay_batches == 0
            assert stats.lane_batched_rounds > 0
        solo_orgs = ["memory-side", "sm-side",
                     make_organization("dynamic", config), "static", "sac",
                     make_organization("static", sconfig,
                                       remote_way_fraction=0.25),
                     make_organization("static", sconfig,
                                       remote_way_fraction=0.5)]
        for i, (org, config_i) in enumerate(zip(solo_orgs, configs)):
            solo = standalone(spec, org, config=config_i)
            assert result.stats[i].comparable_dict() == \
                solo.comparable_dict(), i

    def test_standalone_repartition_avoids_the_interpreter(self):
        # The drain is not a stacked-only path: a standalone dynamic
        # run's post-repartition epochs must also stay vectorized.
        spec = tiny_spec(name="solo-drain", epochs=8, iterations=2)
        stats = standalone(spec, "dynamic")
        assert stats.set_replay_batches == 0
        assert stats.scalar_epochs == 0
        assert stats.demotions == 0

    def test_lane_kernel_fields_are_registered_telemetry(self):
        assert "lane_batched_rounds" in TELEMETRY_FIELDS
        assert "replay_seconds" in TELEMETRY_FIELDS
        assert "set_replay_batches" in TELEMETRY_FIELDS
        assert "other_seconds" in TELEMETRY_FIELDS


class TestDuplicateLanes:
    def test_duplicate_lane_copies_stats_without_simulating(self):
        spec = tiny_spec(name="stacked-dup")
        result = simulate_stacked(
            spec, ["memory-side", "sm-side", "memory-side"],
            scale=SCALE, accesses_per_epoch=DENSITY)
        tele = result.telemetry
        assert tele.duplicate_lanes == 1
        assert tele.stacked_lanes == 2
        assert tele.solo_lanes == 0
        solo = standalone(spec, "memory-side")
        assert result.stats[0].comparable_dict() == solo.comparable_dict()
        assert result.stats[2].comparable_dict() == solo.comparable_dict()
        # The duplicate shares one replay: the bank sees exactly the
        # probe calls of the two distinct lanes, not a third stream.
        dedup = simulate_stacked(spec, ["memory-side", "sm-side"],
                                 scale=SCALE, accesses_per_epoch=DENSITY)
        assert tele.bank_invocations == dedup.telemetry.bank_invocations
        assert tele.shared_encodings == dedup.telemetry.shared_encodings
        assert tele.shared_replays == dedup.telemetry.shared_replays
        assert result.stats[2].stacked_probe_calls == \
            result.stats[0].stacked_probe_calls

    def test_duplicate_stats_are_independent_copies(self):
        spec = tiny_spec(name="stacked-dup-copy")
        result = simulate_stacked(spec, ["memory-side", "memory-side"],
                                  scale=SCALE, accesses_per_epoch=DENSITY)
        assert result.stats[0] is not result.stats[1]
        result.stats[1].accesses += 1
        assert result.stats[0].accesses != result.stats[1].accesses

    def test_organization_instances_are_never_deduplicated(self):
        spec = tiny_spec(name="stacked-dup-inst")
        config = scaled_config(baseline(), SCALE)
        orgs = [make_organization("dynamic", config),
                make_organization("dynamic", config)]
        result = simulate_stacked(spec, orgs, scale=SCALE,
                                  accesses_per_epoch=DENSITY)
        assert result.telemetry.duplicate_lanes == 0
        assert result.stats[0].comparable_dict() == \
            result.stats[1].comparable_dict()


class TestLaneQuarantine:
    """Fault containment: one faulting lane degrades, never aborts.

    ``lane.raise:<org>@2`` fires on the lane's second pump — mid-drive,
    after the shared run is underway — so surviving lanes must finish
    the co-run untouched and the quarantined lane must come back from
    its solo re-run, both bit-identical to standalone ``simulate()``.
    """

    @pytest.fixture(autouse=True)
    def disarm(self):
        faults.reset()
        yield
        faults.reset()

    @pytest.mark.parametrize("victim", ORGANIZATIONS)
    def test_each_organization_quarantines_cleanly(self, victim):
        spec = tiny_spec(name="stacked-quar")
        with faults.armed(f"lane.raise:{victim}@2"):
            result = simulate_stacked(spec, list(ORGANIZATIONS),
                                      scale=SCALE,
                                      accesses_per_epoch=DENSITY)
        index = list(ORGANIZATIONS).index(victim)
        assert result.telemetry.quarantined_lanes == [index]
        assert result.telemetry.demoted_lanes == []
        for i, org in enumerate(ORGANIZATIONS):
            solo = standalone(spec, org)
            assert result.stats[i].comparable_dict() == \
                solo.comparable_dict(), org
            assert result.stats[i].lane_quarantined == (1 if i == index
                                                        else 0)
            assert result.stats[i].lane_demoted == 0

    def test_mid_stream_dynamic_repartition_lane_quarantines(self):
        # The faulting lane is a DynamicLLC instance that repartitions
        # mid-stream; its solo re-run starts from a pristine pre-drive
        # snapshot, so the re-run still reproduces the repartition.
        spec = tiny_spec(name="stacked-quar-dyn", epochs=8, iterations=2)
        config = scaled_config(baseline(), SCALE)
        stacked_org = make_organization("dynamic", config)
        solo_org = make_organization("dynamic", config)
        with faults.armed("lane.raise:dynamic@3"):
            result = simulate_stacked(spec, ["memory-side", stacked_org],
                                      scale=SCALE,
                                      accesses_per_epoch=DENSITY)
        assert result.telemetry.quarantined_lanes == [1]
        solo = standalone(spec, solo_org)
        initial = config.chip.llc_slice.associativity // 2
        assert solo_org.remote_ways != initial
        assert result.stats[1].comparable_dict() == solo.comparable_dict()
        survivor = standalone(spec, "memory-side")
        assert result.stats[0].comparable_dict() == \
            survivor.comparable_dict()

    def test_kernel_fault_demotes_solo_rerun_to_scalar(self):
        # An unbounded kernel.solve_error on one lane faults the shared
        # group call; the solo fallback pins it on the static lane, and
        # its re-run must demote to the scalar engine (the vector path
        # is the thing that faulted) yet stay bit-identical.
        spec = tiny_spec(name="stacked-quar-kern")
        orgs = ["memory-side", "static", "sm-side"]
        with faults.armed("kernel.solve_error:static@1*"):
            result = simulate_stacked(spec, orgs, scale=SCALE,
                                      accesses_per_epoch=DENSITY)
        assert result.telemetry.quarantined_lanes == [1]
        assert result.telemetry.demoted_lanes == [1]
        assert result.stats[1].lane_quarantined == 1
        assert result.stats[1].lane_demoted == 1
        for i, org in enumerate(orgs):
            solo = standalone(spec, org)
            assert result.stats[i].comparable_dict() == \
                solo.comparable_dict(), org

    def test_quarantine_fields_are_telemetry_not_physics(self):
        assert "lane_quarantined" in TELEMETRY_FIELDS
        assert "lane_demoted" in TELEMETRY_FIELDS
