"""REPRO_SANITIZE=1 stacked sweeps: clean, bit-identical, violation-free.

The sanitizer's contract is that it only *observes*: with the flag set,
the five-organization stacked sweep must produce the exact bits of the
unsanitized standalone runs, with zero recorded violations in every
lane.  (The detection half — that a seeded encoding write IS caught —
lives in ``tests/core/test_sanitize.py``.)
"""

import pytest

from repro.core import sanitize
from repro.sim import ORGANIZATIONS, simulate, simulate_stacked
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

SCALE = 1.0 / 64
DENSITY = 512


@pytest.fixture(autouse=True)
def clean_report():
    sanitize.report().clear()
    yield
    sanitize.report().clear()


def tiny_spec(name="sanitized-tiny", epochs=4):
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3,
                      write_fraction=0.25)
    return BenchmarkSpec(
        name=name, suite="test", num_ctas=16, footprint_mb=8,
        true_shared_mb=2, false_shared_mb=2, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=epochs),),
        iterations=1, seed=11)


def test_sanitized_five_org_sweep_is_bit_identical(monkeypatch):
    spec = tiny_spec()
    # Unsanitized standalone baselines first...
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    solo = {org: simulate(spec, org, scale=SCALE,
                          accesses_per_epoch=DENSITY)
            for org in ORGANIZATIONS}
    # ...then the stacked sweep with the sanitizer armed.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    result = simulate_stacked(spec, list(ORGANIZATIONS), scale=SCALE,
                              accesses_per_epoch=DENSITY)
    assert sanitize.report().count == 0
    for org, stats in zip(ORGANIZATIONS, result.stats):
        assert stats.sanitizer_violations == 0, org
        assert stats.comparable_dict() == solo[org].comparable_dict(), org


def test_sanitized_standalone_runs_are_clean(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    spec = tiny_spec(name="sanitized-solo")
    stats = simulate(spec, "sac", scale=SCALE, accesses_per_epoch=DENSITY)
    assert stats.sanitizer_violations == 0
    assert sanitize.report().count == 0


def test_violation_delta_lands_in_run_stats(monkeypatch):
    # Violations recorded before a run must not leak into its stats —
    # the engine stores the per-run delta, not the process total.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitize.report().record("contract", "earlier-run", "stale")
    spec = tiny_spec(name="sanitized-delta", epochs=2)
    stats = simulate(spec, "memory-side", scale=SCALE,
                     accesses_per_epoch=DENSITY)
    assert stats.sanitizer_violations == 0
    assert sanitize.report().count == 1
