"""Focused tests on the engine's traffic accounting (Figure 6 paths)."""

import pytest

from repro.arch import baseline
from repro.sim import SimulationEngine, make_organization
from repro.sim.run import scaled_config
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec, TraceGenerator

SCALE = 1.0 / 32


def run(org_name, weight_true=1.0, weight_private=0.0, seed=53,
        write_fraction=0.0, epochs=1, accesses=256):
    config = scaled_config(baseline(), SCALE)
    phase = PhaseSpec(weight_true=weight_true, weight_false=0.0,
                      weight_private=weight_private, hot_fraction=1.0,
                      hot_weight=0.0, write_fraction=write_fraction)
    spec = BenchmarkSpec(
        name="traffic", suite="test", num_ctas=8, footprint_mb=4,
        true_shared_mb=4 * weight_true, false_shared_mb=0,
        preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=epochs),),
        seed=seed)
    org = make_organization(org_name, config)
    engine = SimulationEngine(config, org)
    generator = TraceGenerator(
        spec, num_chips=config.num_chips,
        clusters_per_chip=config.chip.num_clusters,
        line_size=config.line_size, page_size=config.page_size,
        accesses_per_epoch_per_chip=accesses, scale=SCALE)
    stats = engine.run(generator.kernels(), benchmark="traffic")
    return engine, stats


class TestMemorySidePaths:
    def test_remote_requests_cross_the_ring_twice(self):
        """Each remote access charges a request and a response message."""
        _engine, stats = run("memory-side")
        remote = (stats.responses_by_origin["remote_llc"]
                  + stats.responses_by_origin["remote_mem"])
        # 32B request + 144B response per remote access, ignoring
        # write-backs (write_fraction=0).
        assert stats.inter_chip_bytes == pytest.approx(
            remote * (32 + 144), rel=0.01)

    def test_private_traffic_never_crosses_the_ring(self):
        _engine, stats = run("memory-side", weight_true=0.0,
                             weight_private=1.0)
        assert stats.inter_chip_bytes == 0

    def test_cold_misses_reach_dram_once_per_line(self):
        engine, stats = run("memory-side", weight_true=0.0,
                            weight_private=1.0)
        misses = stats.llc_lookups - stats.llc_hits
        # Each miss moves request+response through DRAM (176 B).
        assert stats.dram_bytes == pytest.approx(misses * 176, rel=0.01)


class TestSMSidePaths:
    def test_remote_misses_cross_ring_but_hits_do_not(self):
        _engine, stats = run("sm-side")
        # With write_fraction 0 and no dirty evictions, inter-chip bytes
        # come only from remote-homed misses.
        remote_misses = stats.responses_by_origin["remote_mem"]
        assert stats.inter_chip_bytes == pytest.approx(
            remote_misses * (32 + 144), rel=0.01)

    def test_dirty_writebacks_add_ring_traffic(self):
        _clean_engine, clean = run("sm-side", write_fraction=0.0, epochs=2)
        _dirty_engine, dirty = run("sm-side", write_fraction=0.5, epochs=2)
        assert dirty.inter_chip_bytes > clean.inter_chip_bytes


class TestWriteTraffic:
    def test_writes_carry_payload_on_the_request(self):
        _r, reads = run("memory-side", write_fraction=0.0)
        _w, writes = run("memory-side", write_fraction=1.0, seed=53)
        # Write requests carry +32B of data per remote access.
        assert writes.inter_chip_bytes > reads.inter_chip_bytes
