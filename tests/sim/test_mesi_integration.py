"""Integration tests: MESI coherence through the engine."""

import pytest

from repro.arch import baseline, with_coherence
from repro.sim import simulate
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

SCALE = 1.0 / 32


def sharing_spec(write_fraction=0.4):
    phase = PhaseSpec(weight_true=0.8, weight_false=0.0, weight_private=0.2,
                      hot_fraction=0.05, hot_weight=0.95,
                      write_fraction=write_fraction, intensity=3000.0)
    return BenchmarkSpec(
        name="mesi-tiny", suite="test", num_ctas=16, footprint_mb=8,
        true_shared_mb=4, false_shared_mb=0, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=3),),
        iterations=2, seed=37)


def run(protocol, org="sm-side", write_fraction=0.4):
    config = with_coherence(baseline(), protocol)
    return simulate(sharing_spec(write_fraction), org, config=config,
                    scale=SCALE, accesses_per_epoch=512)


class TestMESIEngine:
    def test_runs_and_produces_coherence_traffic(self):
        stats = run("hardware-mesi")
        assert stats.cycles > 0
        assert stats.coherence_bytes > 0
        assert stats.coherence_invalidations > 0

    def test_read_only_sharing_has_no_invalidations(self):
        stats = run("hardware-mesi", write_fraction=0.0)
        assert stats.coherence_invalidations == 0

    def test_memory_side_needs_no_directory_traffic(self):
        stats = run("hardware-mesi", org="memory-side")
        assert stats.coherence_bytes == 0

    def test_mesi_tracks_more_traffic_than_simple_directory(self):
        """MESI adds transfers/downgrades on read sharing, so its
        protocol traffic is at least the simple directory's."""
        simple = run("hardware")
        mesi = run("hardware-mesi")
        assert mesi.coherence_bytes >= simple.coherence_bytes

    def test_sac_runs_under_mesi(self):
        stats = run("hardware-mesi", org="sac")
        assert stats.cycles > 0
