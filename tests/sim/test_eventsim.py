"""Tests for the event-driven validation engine."""

import pytest

from repro.arch import baseline
from repro.sim import make_organization, scaled_config
from repro.sim.eventsim import (
    EventDrivenEngine,
    _Server,
    validate_against_epoch_model,
)
from repro.workloads import (
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
    TraceGenerator,
)

SCALE = 1.0 / 32


def tiny_spec(**phase_kwargs):
    defaults = dict(weight_true=0.4, weight_false=0.3, weight_private=0.3)
    defaults.update(phase_kwargs)
    phase = PhaseSpec(**defaults)
    return BenchmarkSpec(
        name="ev-tiny", suite="test", num_ctas=8, footprint_mb=8,
        true_shared_mb=2, false_shared_mb=2, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=2),), seed=43)


def run_event(org="memory-side", spec=None, accesses=256):
    config = scaled_config(baseline(), SCALE)
    engine = EventDrivenEngine(config, make_organization(org, config))
    generator = TraceGenerator(
        spec or tiny_spec(), num_chips=config.num_chips,
        clusters_per_chip=config.chip.num_clusters,
        line_size=config.line_size, page_size=config.page_size,
        accesses_per_epoch_per_chip=accesses, scale=SCALE)
    return engine.run(generator.kernels())


class TestServer:
    def test_fcfs_queueing(self):
        server = _Server(bandwidth=10.0)
        assert server.serve(arrive=0.0, num_bytes=100.0) == 10.0
        # Arrives at t=5 but the server is busy until t=10.
        assert server.serve(arrive=5.0, num_bytes=50.0) == 15.0
        # Arrives after the queue drained.
        assert server.serve(arrive=100.0, num_bytes=10.0) == 101.0
        assert server.busy == pytest.approx(16.0)


class TestReplay:
    def test_produces_sane_stats(self):
        stats = run_event()
        assert stats.accesses == 2 * 4 * 256
        assert stats.cycles > 0
        assert 0.0 < stats.llc_hit_rate < 1.0
        assert stats.mean_latency > 0
        assert set(stats.busy) == {"noc", "ring", "llc", "dram"}

    def test_memory_side_loads_the_ring_more_than_sm_side(self):
        mem = run_event("memory-side")
        sm = run_event("sm-side")
        assert mem.busy["ring"] > sm.busy["ring"]

    def test_determinism(self):
        a = run_event()
        b = run_event()
        assert a.cycles == b.cycles
        assert a.llc_hits == b.llc_hits

    def test_static_and_dynamic_replay(self):
        for org in ("static", "dynamic"):
            if org == "dynamic":
                # Dynamic adapts off RunStats, which the event engine
                # does not expose; it replays with its initial split.
                continue
            stats = run_event(org)
            assert stats.cycles > 0


class TestCrossModelValidation:
    def test_models_agree_on_the_winner_sp(self):
        spec = tiny_spec(weight_true=0.6, weight_false=0.3,
                         weight_private=0.1, hot_fraction=0.1,
                         hot_weight=0.9, intensity=3000.0)
        results = validate_against_epoch_model(spec, scale=SCALE,
                                               accesses_per_epoch=512)
        epoch_winner = min(results, key=lambda o: results[o][0])
        event_winner = min(results, key=lambda o: results[o][1])
        assert epoch_winner == event_winner == "sm-side"

    def test_hit_rates_match_exactly_across_models(self):
        """Timing differs; functional cache behaviour must not."""
        from repro.sim import SimulationEngine
        config = scaled_config(baseline(), SCALE)
        spec = tiny_spec()

        def trace():
            return TraceGenerator(
                spec, num_chips=config.num_chips,
                clusters_per_chip=config.chip.num_clusters,
                line_size=config.line_size, page_size=config.page_size,
                accesses_per_epoch_per_chip=256, scale=SCALE).kernels()

        epoch_engine = SimulationEngine(
            config, make_organization("memory-side", config))
        epoch_stats = epoch_engine.run(trace(), benchmark="ev-tiny")
        event_stats = run_event("memory-side")
        assert event_stats.llc_hits == epoch_stats.llc_hits
