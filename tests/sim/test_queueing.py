"""Unit tests for the analytical queueing model."""

import pytest

from repro.sim.queueing import RHO_CAP, QueueModel, md1_wait


class TestMD1Wait:
    def test_zero_load_waits_nothing(self):
        assert md1_wait(service_time=2.0, utilization=0.0) == 0.0

    def test_wait_grows_with_utilization(self):
        waits = [md1_wait(1.0, rho) for rho in (0.1, 0.5, 0.9)]
        assert waits[0] < waits[1] < waits[2]

    def test_half_load_closed_form(self):
        # W = s * 0.5 / (2 * 0.5) = s / 2.
        assert md1_wait(4.0, 0.5) == pytest.approx(2.0)

    def test_saturation_is_capped(self):
        capped = md1_wait(1.0, RHO_CAP)
        assert md1_wait(1.0, 5.0) == pytest.approx(capped)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            md1_wait(-1.0, 0.5)
        with pytest.raises(ValueError):
            md1_wait(1.0, -0.5)


class TestQueueModel:
    def test_service_time(self):
        model = QueueModel(capacity=64.0, request_bytes=128.0)
        assert model.service_time == pytest.approx(2.0)

    def test_wait_from_epoch_load(self):
        model = QueueModel(capacity=100.0, request_bytes=100.0)
        # 5000 bytes over 100 cycles at 100 B/cyc -> rho = 0.5.
        assert model.wait(epoch_bytes=5000.0, epoch_cycles=100.0) == \
            pytest.approx(md1_wait(1.0, 0.5))

    def test_idle_epoch_is_free(self):
        model = QueueModel(capacity=100.0, request_bytes=100.0)
        assert model.wait(0.0, 100.0) == 0.0
        assert model.wait(100.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueModel(capacity=0.0, request_bytes=1.0)
        with pytest.raises(ValueError):
            QueueModel(capacity=1.0, request_bytes=0.0)


class TestEngineIntegration:
    def test_queueing_can_bind_when_latency_limited(self):
        """With few outstanding misses, queue delay extends the epoch."""
        from repro.sim import EngineParams, simulate
        from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

        phase = PhaseSpec(weight_true=0.2, weight_false=0.0,
                          weight_private=0.8, hot_fraction=1.0,
                          hot_weight=0.0, intensity=4000.0)
        spec = BenchmarkSpec(
            name="queue-tiny", suite="test", num_ctas=8, footprint_mb=64,
            true_shared_mb=4, false_shared_mb=0,
            preference="memory-side",
            kernels=(KernelSpec(name="k", phase=phase, epochs=2),), seed=31)
        base = simulate(spec, "memory-side", accesses_per_epoch=1024,
                        params=EngineParams(max_outstanding_per_chip=16))
        queued = simulate(spec, "memory-side", accesses_per_epoch=1024,
                          params=EngineParams(max_outstanding_per_chip=16,
                                              model_queueing=True))
        assert queued.cycles > base.cycles

    def test_queueing_never_reduces_cycles(self):
        from repro.sim import EngineParams, simulate
        from repro.workloads import get
        base = simulate(get("BS"), "memory-side", accesses_per_epoch=1024)
        queued = simulate(get("BS"), "memory-side", accesses_per_epoch=1024,
                          params=EngineParams(model_queueing=True))
        assert queued.cycles >= base.cycles
