"""Unit tests for run statistics and aggregation helpers."""

import pytest

from repro.sim import KernelStats, RunStats, harmonic_mean, speedup
from repro.sim.stats import ORIGINS


class TestRunStats:
    def test_hit_rate_handles_empty_runs(self):
        stats = RunStats()
        assert stats.llc_hit_rate == 0.0
        assert stats.llc_miss_rate == 0.0
        assert stats.effective_llc_bandwidth == 0.0

    def test_effective_bandwidth_is_responses_per_cycle(self):
        stats = RunStats(cycles=100.0)
        stats.responses_by_origin["local_llc"] = 120
        stats.responses_by_origin["remote_mem"] = 30
        assert stats.effective_llc_bandwidth == pytest.approx(1.5)

    def test_bandwidth_breakdown_covers_all_origins(self):
        stats = RunStats(cycles=10.0)
        stats.responses_by_origin["local_llc"] = 5
        breakdown = stats.bandwidth_breakdown()
        assert set(breakdown) == set(ORIGINS)
        assert breakdown["local_llc"] == pytest.approx(0.5)
        assert breakdown["remote_llc"] == 0.0

    def test_merge_kernel_accumulates(self):
        stats = RunStats()
        stats.merge_kernel(KernelStats(name="a", cycles=10, accesses=5,
                                       llc_hits=3, llc_lookups=5))
        stats.merge_kernel(KernelStats(name="b", cycles=20, accesses=5,
                                       llc_hits=1, llc_lookups=5))
        assert stats.cycles == 30
        assert stats.llc_hit_rate == pytest.approx(0.4)
        assert [k.name for k in stats.kernels] == ["a", "b"]


class TestKernelStats:
    def test_hit_rate(self):
        kernel = KernelStats(name="k", llc_hits=2, llc_lookups=8)
        assert kernel.llc_hit_rate == pytest.approx(0.25)

    def test_empty_kernel_hit_rate(self):
        assert KernelStats(name="k").llc_hit_rate == 0.0

    def test_epoch_series_sums_to_kernel_epoch_time(self):
        """The engine records per-epoch durations that tile the kernel."""
        from repro.sim import simulate
        from repro.workloads import get
        stats = simulate(get("BS"), "memory-side", accesses_per_epoch=512)
        for kernel in stats.kernels:
            assert len(kernel.epoch_cycles) >= 1
            epoch_total = sum(kernel.epoch_cycles)
            assert epoch_total == pytest.approx(
                kernel.cycles - kernel.reconfig_cycles)


class TestBottleneckReporting:
    def test_fractions_sum_to_one(self):
        stats = RunStats()
        stats.bottleneck_cycles = {"inter_chip": 75.0, "compute": 25.0}
        fractions = stats.bottleneck_fractions()
        assert fractions["inter_chip"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_dominant_bottleneck(self):
        stats = RunStats()
        stats.bottleneck_cycles = {"dram": 10.0, "compute": 90.0}
        assert stats.dominant_bottleneck() == "compute"

    def test_empty_run_has_no_bottleneck(self):
        stats = RunStats()
        assert stats.dominant_bottleneck() is None
        assert stats.bottleneck_fractions() == {}

    def test_summary_is_flat_and_complete(self):
        stats = RunStats(benchmark="x", organization="sac", cycles=100.0,
                         accesses=10)
        stats.bottleneck_cycles = {"dram": 100.0}
        summary = stats.summary()
        assert summary["benchmark"] == "x"
        assert summary["dominant_bottleneck"] == "dram"
        assert all(not isinstance(v, (dict, list))
                   for v in summary.values())


class TestAggregation:
    def test_speedup(self):
        fast = RunStats(cycles=50.0)
        slow = RunStats(cycles=100.0)
        assert speedup(slow, fast) == pytest.approx(2.0)

    def test_speedup_rejects_empty_candidate(self):
        with pytest.raises(ValueError):
            speedup(RunStats(cycles=10.0), RunStats(cycles=0.0))

    def test_harmonic_mean_le_arithmetic(self):
        values = [1.0, 2.0, 4.0]
        hmean = harmonic_mean(values)
        assert hmean < sum(values) / 3
        assert hmean == pytest.approx(3 / (1 + 0.5 + 0.25))

    def test_harmonic_mean_of_identical_values(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)

    def test_harmonic_mean_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
