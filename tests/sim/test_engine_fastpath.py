"""Regression tests for the batched epoch fast path.

The batched path must be *bit-identical* to the per-access path: same
functional cache decisions, same resource charges, same latencies.  The
tests compare ``RunStats.comparable_dict()`` (which excludes host-side
telemetry such as wall clock and path counters) across several specs and
every organization, and pin the fallback rules for configurations that
need per-access side effects.
"""

import pytest

from repro.arch import baseline, with_coherence
from repro.sim import EngineParams
from repro.sim.run import simulate
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

SCALE = 1.0 / 64
DENSITY = 512

ORGS = ("memory-side", "sm-side", "static", "dynamic", "sac")


def spec(name, weight_true, weight_false, weight_private, epochs=2,
         write_fraction=0.25, preference="sm-side", seed=11):
    phase = PhaseSpec(weight_true=weight_true, weight_false=weight_false,
                      weight_private=weight_private,
                      write_fraction=write_fraction)
    return BenchmarkSpec(
        name=name, suite="test", num_ctas=16, footprint_mb=8,
        true_shared_mb=2, false_shared_mb=2, preference=preference,
        kernels=(KernelSpec(name="k", phase=phase, epochs=epochs),),
        seed=seed)


SPECS = (
    spec("shared-heavy", 0.6, 0.2, 0.2, epochs=3),
    spec("private-heavy", 0.1, 0.1, 0.8, preference="memory-side", seed=5),
    spec("false-sharing", 0.2, 0.6, 0.2, write_fraction=0.4, seed=23),
)


def both_paths(bench, organization, config=None, params_kwargs=None):
    kwargs = params_kwargs or {}
    serial = simulate(bench, organization, config=config, scale=SCALE,
                      accesses_per_epoch=DENSITY,
                      params=EngineParams(batched=False, **kwargs))
    batched = simulate(bench, organization, config=config, scale=SCALE,
                       accesses_per_epoch=DENSITY,
                       params=EngineParams(batched=True, **kwargs))
    return serial, batched


class TestBitIdentical:
    @pytest.mark.parametrize("bench", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("organization", ORGS)
    def test_batched_matches_serial(self, bench, organization):
        serial, batched = both_paths(bench, organization)
        assert batched.comparable_dict() == serial.comparable_dict()

    def test_batched_path_actually_ran(self):
        _, batched = both_paths(SPECS[0], "memory-side")
        assert batched.fast_epochs > 0
        assert batched.slow_epochs == 0

    def test_serial_flag_forces_slow_path(self):
        serial, _ = both_paths(SPECS[0], "memory-side")
        assert serial.fast_epochs == 0
        assert serial.slow_epochs > 0

    def test_with_l1_modeled(self):
        serial, batched = both_paths(SPECS[0], "memory-side",
                                     params_kwargs={"model_l1": True})
        assert batched.fast_epochs > 0
        assert batched.comparable_dict() == serial.comparable_dict()


class TestVectorizedProbe:
    """The vectorized tag-store kernel vs the bound-method probe loop."""

    @pytest.mark.parametrize("bench", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("organization", ("memory-side", "sm-side"))
    def test_vector_kernel_matches_loop_and_serial(self, bench,
                                                   organization):
        serial = simulate(bench, organization, scale=SCALE,
                          accesses_per_epoch=DENSITY,
                          params=EngineParams(batched=False))
        loop = simulate(bench, organization, scale=SCALE,
                        accesses_per_epoch=DENSITY,
                        params=EngineParams(batched=True, vectorized=False))
        vec = simulate(bench, organization, scale=SCALE,
                       accesses_per_epoch=DENSITY,
                       params=EngineParams(batched=True, vectorized=True))
        # Uniform single-stage organizations resolve every batched epoch
        # through the grouped stack-distance kernel.
        assert vec.vector_epochs > 0
        assert loop.vector_epochs == 0
        assert vec.comparable_dict() == loop.comparable_dict()
        assert vec.comparable_dict() == serial.comparable_dict()

    @pytest.mark.parametrize("bench", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("organization", ("static", "dynamic", "sac"))
    def test_partitioned_orgs_stay_on_the_kernel(self, bench, organization):
        # Way-partitioned organizations resolve their two-stage epochs
        # through the staged vector solver; results stay identical to
        # vectorized=False and no epoch demotes to the probe loop.
        loop = simulate(bench, organization, scale=SCALE,
                        accesses_per_epoch=DENSITY,
                        params=EngineParams(batched=True, vectorized=False))
        vec = simulate(bench, organization, scale=SCALE,
                       accesses_per_epoch=DENSITY,
                       params=EngineParams(batched=True, vectorized=True))
        assert vec.vector_epochs > 0
        assert vec.demotions == 0
        assert loop.scalar_epochs == loop.fast_epochs
        assert loop.demotions == 0  # no bank attached -> not a demotion
        assert vec.comparable_dict() == loop.comparable_dict()

    def test_l1_modeling_takes_probe_loop(self):
        # An L1 between the SMs and the LLC serializes the probe order,
        # so the batch path declines and the loop runs instead.
        vec = simulate(SPECS[0], "memory-side", scale=SCALE,
                       accesses_per_epoch=DENSITY,
                       params=EngineParams(batched=True, vectorized=True,
                                           model_l1=True))
        assert vec.fast_epochs > 0
        assert vec.vector_epochs == 0
        assert vec.scalar_epochs == vec.fast_epochs
        assert vec.demotions == vec.fast_epochs

    def test_probe_seconds_recorded(self):
        vec = simulate(SPECS[0], "memory-side", scale=SCALE,
                       accesses_per_epoch=DENSITY,
                       params=EngineParams(batched=True, vectorized=True))
        assert vec.probe_seconds > 0.0
        assert "probe_seconds" not in vec.comparable_dict()


class TestFallbacks:
    def test_sac_profiling_epochs_batch(self):
        # SAC's batched observer (observe_batch) reproduces the
        # per-access counter updates, so profiling heads take the fast
        # path too — and the profiling decisions (hence the physics)
        # must match the serial reference bit-for-bit.
        serial, batched = both_paths(SPECS[0], "sac")
        assert batched.slow_epochs == 0
        assert batched.fast_epochs > 0
        assert batched.comparable_dict() == serial.comparable_dict()

    def test_hardware_coherence_falls_back(self):
        config = with_coherence(baseline(), "hardware")
        serial, batched = both_paths(SPECS[0], "sm-side", config=config)
        assert batched.fast_epochs == 0
        assert batched.slow_epochs > 0
        assert batched.comparable_dict() == serial.comparable_dict()

    def test_ladm_falls_back(self):
        # LADM's second-touch insertion filter is per-access state.
        serial, batched = both_paths(SPECS[0], "ladm")
        assert batched.fast_epochs == 0
        assert batched.comparable_dict() == serial.comparable_dict()
