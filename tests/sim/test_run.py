"""Tests for the high-level run orchestration (repro.sim.run)."""

import pytest

from repro.arch import baseline
from repro.core import SharingAwareCaching
from repro.llc import DynamicLLC, MemorySideLLC, SMSideLLC, StaticLLC
from repro.sim import ORGANIZATIONS, make_organization, scaled_config, simulate
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec


def tiny_spec():
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3)
    return BenchmarkSpec(
        name="run-tiny", suite="test", num_ctas=8, footprint_mb=4,
        true_shared_mb=1, false_shared_mb=1, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=1),), seed=17)


class TestMakeOrganization:
    def test_all_names_resolve(self):
        config = baseline()
        types = {
            "memory-side": MemorySideLLC,
            "sm-side": SMSideLLC,
            "static": StaticLLC,
            "dynamic": DynamicLLC,
            "sac": SharingAwareCaching,
        }
        assert set(types) == set(ORGANIZATIONS)
        for name, cls in types.items():
            assert isinstance(make_organization(name, config), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="memory-side"):
            make_organization("l3", baseline())

    def test_kwargs_are_forwarded(self):
        org = make_organization("static", baseline(),
                                remote_way_fraction=0.25)
        assert org.remote_way_fraction == 0.25


class TestScaledConfig:
    def test_scale_one_is_identity(self):
        config = baseline()
        assert scaled_config(config, 1.0) is config

    def test_scales_llc_and_l1(self):
        config = scaled_config(baseline(), 0.25)
        assert config.chip.llc_slice.size_bytes == 64 * 1024
        assert config.chip.l1.size_bytes == 32 * 1024

    def test_scales_profiling_window_with_floor(self):
        config = scaled_config(baseline(), 1.0 / 16)
        assert config.sac.profile_window_cycles == 500
        assert config.sac.theta >= 0.08

    def test_page_size_is_not_scaled(self):
        # The 4 KB first-touch granularity is part of the workload
        # definition (see scaled_config's docstring/comment).
        config = scaled_config(baseline(), 1.0 / 16)
        assert config.page_size == 4096

    def test_bandwidths_are_untouched(self):
        config = scaled_config(baseline(), 1.0 / 16)
        assert config.total_memory_bw == baseline().total_memory_bw
        assert config.total_inter_chip_bw == baseline().total_inter_chip_bw


class TestSimulate:
    def test_returns_populated_stats(self):
        stats = simulate(tiny_spec(), "memory-side", accesses_per_epoch=256)
        assert stats.benchmark == "run-tiny"
        assert stats.organization == "memory-side"
        assert stats.accesses == 4 * 256
        assert stats.cycles > 0

    def test_accepts_prebuilt_organization(self):
        config = scaled_config(baseline(), 1.0 / 16)
        org = SMSideLLC(config.num_chips)
        stats = simulate(tiny_spec(), org, accesses_per_epoch=256)
        assert stats.organization == "sm-side"

    def test_full_scale_run(self):
        stats = simulate(tiny_spec(), "memory-side", scale=1.0,
                         accesses_per_epoch=256)
        assert stats.cycles > 0


class TestOrgKwargs:
    def test_simulate_forwards_org_kwargs(self):
        stats = simulate(tiny_spec(), "static", accesses_per_epoch=256,
                         org_kwargs={"remote_way_fraction": 0.25})
        assert stats.organization == "static"

    def test_ladm_is_constructible_through_simulate(self):
        stats = simulate(tiny_spec(), "ladm", accesses_per_epoch=256)
        assert stats.organization == "ladm"


class TestTimingBreakdown:
    """probe/solve/charge/other must nearly exhaust the run wall clock.

    ``probe_seconds`` (epoch prep + bank probes, which on a standalone
    run also contains ``solve_seconds``), ``charge_seconds`` (the
    accounting tail) and the directly-bracketed ``other_seconds``
    (trace synthesis, organization hooks, route/plan prep) are measured
    at their sites; together they must account for >= 95% of
    ``wall_seconds`` on a vectorized run, so no hidden cost can grow
    outside the telemetry.
    """

    @pytest.mark.parametrize("org", ORGANIZATIONS)
    def test_breakdown_covers_wall_seconds(self, org):
        phase = PhaseSpec(weight_true=0.4, weight_false=0.3,
                          weight_private=0.3, write_fraction=0.25)
        spec = BenchmarkSpec(
            name="breakdown", suite="test", num_ctas=16, footprint_mb=8,
            true_shared_mb=2, false_shared_mb=2, preference="sm-side",
            kernels=(KernelSpec(name="k", phase=phase, epochs=6),),
            iterations=1, seed=11)
        stats = simulate(spec, org, scale=1.0 / 64,
                         accesses_per_epoch=2048)
        assert stats.scalar_epochs == 0
        covered = (stats.probe_seconds + stats.charge_seconds
                   + stats.other_seconds)
        assert stats.wall_seconds > 0.0
        assert covered >= 0.95 * stats.wall_seconds, (
            f"breakdown covers {covered / stats.wall_seconds:.1%}")
        # solve_seconds is the bank-invocation share of probe_seconds.
        assert 0.0 <= stats.solve_seconds <= stats.probe_seconds
        # replay_seconds is spent inside the solve (shared-stream runs
        # only; a standalone bank accrues it on its shared entry points).
        assert stats.replay_seconds >= 0.0
        assert stats.other_seconds > 0.0
