"""Integration tests for engine behaviour across design-space variants."""

import pytest

from repro.arch import (
    baseline,
    with_chip_count,
    with_coherence,
    with_page_size,
    with_sectored_llc,
)
from repro.sim import simulate
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

SCALE = 1.0 / 32


def tiny_spec(**phase_kwargs):
    defaults = dict(weight_true=0.4, weight_false=0.3, weight_private=0.3)
    defaults.update(phase_kwargs)
    phase = PhaseSpec(**defaults)
    return BenchmarkSpec(
        name="variant-tiny", suite="test", num_ctas=16, footprint_mb=8,
        true_shared_mb=2, false_shared_mb=2, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=2),), seed=23)


def run(org="memory-side", config=None, spec=None):
    return simulate(spec or tiny_spec(), org, config=config, scale=SCALE,
                    accesses_per_epoch=512)


class TestChipCounts:
    def test_two_chip_system(self):
        config = with_chip_count(baseline(), 2)
        stats = run(config=config)
        assert stats.cycles > 0
        assert sum(stats.responses_by_origin.values()) == stats.accesses

    def test_single_chip_has_no_remote_traffic(self):
        config = with_chip_count(baseline(), 1)
        stats = run(config=config)
        assert stats.inter_chip_bytes == 0
        assert stats.responses_by_origin["remote_llc"] == 0
        assert stats.responses_by_origin["remote_mem"] == 0

    def test_eight_chip_system(self):
        config = with_chip_count(baseline(), 8)
        stats = run("sm-side", config=config)
        assert stats.cycles > 0

    def test_sac_works_on_two_chips(self):
        config = with_chip_count(baseline(), 2)
        stats = run("sac", config=config)
        assert stats.kernels[0].organization in ("memory-side", "sm-side")


class TestSectoredLLC:
    def test_sectored_llc_runs_and_has_lower_hit_rate(self):
        base = baseline()
        conventional = run(config=base)
        sectored = run(config=with_sectored_llc(base))
        # Sector misses on resident lines only exist in sectored caches.
        assert sectored.llc_hit_rate <= conventional.llc_hit_rate + 1e-9

    def test_sac_with_sectored_llc(self):
        stats = run("sac", config=with_sectored_llc(baseline()))
        assert stats.cycles > 0


class TestPageSizes:
    def test_large_pages_spread_false_sharing(self):
        stats = run(config=with_page_size(baseline(), 65536))
        assert stats.cycles > 0

    def test_page_size_changes_placement(self):
        small = run(config=baseline())
        large = run(config=with_page_size(baseline(), 65536))
        # Different placement -> different remote traffic (usually more
        # false sharing with bigger pages under first touch).
        assert small.inter_chip_bytes != large.inter_chip_bytes


class TestHardwareCoherenceWithSAC:
    def test_sac_runs_under_hardware_coherence(self):
        config = with_coherence(baseline(), "hardware")
        spec = tiny_spec(weight_true=0.8, weight_false=0.0,
                         weight_private=0.2, write_fraction=0.4,
                         hot_fraction=0.05, hot_weight=0.95,
                         intensity=3000.0)
        stats = run("sac", config=config, spec=spec)
        assert stats.cycles > 0

    def test_hw_coherence_avoids_kernel_boundary_full_flush(self):
        spec = tiny_spec(write_fraction=0.3)
        sw = run("sm-side", config=baseline(), spec=spec)
        hw = run("sm-side", config=with_coherence(baseline(), "hardware"),
                 spec=spec)
        # The hardware protocol only writes back remote-homed lines at
        # kernel end; the software protocol flushes everything.
        assert hw.flush_cycles <= sw.flush_cycles


class TestInputScaling:
    def test_scaled_input_changes_working_set(self):
        spec = tiny_spec()
        small = run(spec=spec.scaled_input(0.25))
        large = run(spec=spec.scaled_input(4.0))
        # A bigger input has a bigger footprint and a lower hit rate.
        assert large.llc_hit_rate < small.llc_hit_rate
