"""Unit tests for CTA scheduling policies."""

import pytest

from repro.sim import DistributedCTAScheduler, RoundRobinCTAScheduler


class TestDistributed:
    def test_contiguous_blocks(self):
        scheduler = DistributedCTAScheduler(num_ctas=8, num_chips=4)
        assert [scheduler.chip_of(i) for i in range(8)] == \
            [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_division(self):
        scheduler = DistributedCTAScheduler(num_ctas=10, num_chips=4)
        counts = scheduler.counts()
        assert sum(counts) == 10
        assert max(counts) - min(counts) <= 3

    def test_ctas_of_roundtrip(self):
        scheduler = DistributedCTAScheduler(num_ctas=100, num_chips=4)
        for chip in range(4):
            for cta in scheduler.ctas_of(chip):
                assert scheduler.chip_of(cta) == chip

    def test_fewer_ctas_than_chips(self):
        scheduler = DistributedCTAScheduler(num_ctas=2, num_chips=4)
        assert sum(scheduler.counts()) == 2

    def test_bounds_checking(self):
        scheduler = DistributedCTAScheduler(num_ctas=8, num_chips=4)
        with pytest.raises(IndexError):
            scheduler.chip_of(8)
        with pytest.raises(IndexError):
            scheduler.ctas_of(4)


class TestRoundRobin:
    def test_interleaving(self):
        scheduler = RoundRobinCTAScheduler(num_ctas=8, num_chips=4)
        assert [scheduler.chip_of(i) for i in range(8)] == \
            [0, 1, 2, 3, 0, 1, 2, 3]

    def test_ctas_of(self):
        scheduler = RoundRobinCTAScheduler(num_ctas=10, num_chips=4)
        assert list(scheduler.ctas_of(1)) == [1, 5, 9]

    def test_counts_are_balanced(self):
        scheduler = RoundRobinCTAScheduler(num_ctas=10, num_chips=4)
        counts = scheduler.counts()
        assert sum(counts) == 10
        assert max(counts) - min(counts) <= 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RoundRobinCTAScheduler(num_ctas=0, num_chips=4)
