"""Unit tests for CTA-level kernel programs."""

import numpy as np
import pytest

from repro.workloads import (
    Array,
    ArrayAccess,
    Broadcast,
    Halo,
    KernelProgram,
    Partitioned,
    ProgramWorkload,
    Strided,
    simulate_program,
)

MB = 1024 * 1024
LINE = 128


def make_workload(accesses=None, ctas=64, scheduling="distributed",
                  per_chip=256, iterations=1):
    a = Array("A", 2 * MB)
    accesses = accesses or [ArrayAccess(a, Partitioned(), weight=1.0)]
    kernel = KernelProgram("k", accesses, ctas=ctas, accesses_per_cta=64,
                           intensity=4000.0)
    return ProgramWorkload("test-app", [kernel], num_chips=4,
                           clusters_per_chip=8,
                           cta_scheduling=scheduling,
                           accesses_per_epoch_per_chip=per_chip,
                           iterations=iterations)


class TestLayout:
    def test_arrays_are_page_aligned_and_disjoint(self):
        a = Array("A", 1 * MB + 5)
        b = Array("B", 2 * MB)
        kernel = KernelProgram("k", [
            ArrayAccess(a, Partitioned(), 1.0),
            ArrayAccess(b, Broadcast(), 1.0)], ctas=8, accesses_per_cta=8)
        workload = ProgramWorkload("app", [kernel], num_chips=2)
        assert workload.array_base(a) == 0
        assert workload.array_base(b) % 4096 == 0
        assert workload.array_base(b) >= a.size_bytes

    def test_shared_arrays_are_laid_out_once(self):
        a = Array("A", 1 * MB)
        k1 = KernelProgram("k1", [ArrayAccess(a, Partitioned(), 1.0)],
                           ctas=8, accesses_per_cta=8)
        k2 = KernelProgram("k2", [ArrayAccess(a, Broadcast(), 1.0)],
                           ctas=8, accesses_per_cta=8)
        workload = ProgramWorkload("app", [k1, k2], num_chips=2)
        assert workload.footprint_bytes == 1 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            Array("bad", 0)
        with pytest.raises(ValueError):
            KernelProgram("k", [], ctas=8, accesses_per_cta=8)
        a = Array("A", MB)
        with pytest.raises(ValueError):
            ArrayAccess(a, Partitioned(), weight=0.0)


class TestCompilation:
    def test_epoch_count_covers_total_accesses(self):
        workload = make_workload(ctas=64, per_chip=256)
        traces = list(workload.kernel_traces())
        assert len(traces) == 1
        # 64 CTAs x 64 accesses = 4096 total; 4 chips x 256 = 1024/epoch.
        assert len(traces[0].epochs) == 4

    def test_determinism(self):
        a = list(make_workload().kernel_traces())[0].epochs[0]
        b = list(make_workload().kernel_traces())[0].epochs[0]
        assert np.array_equal(a.addrs, b.addrs)

    def test_iterations_repeat_kernels(self):
        names = [t.name for t in make_workload(iterations=2).kernel_traces()]
        assert len(names) == 2
        assert names[0] != names[1]

    def test_write_fractions_propagate(self):
        a = Array("A", 2 * MB)
        workload = make_workload(accesses=[
            ArrayAccess(a, Partitioned(), 1.0, write_fraction=1.0)])
        epoch = list(workload.kernel_traces())[0].epochs[0]
        assert epoch.writes.all()


class TestPatternSemantics:
    def _epoch_lines_by_chip(self, workload):
        epochs = list(workload.kernel_traces())[0].epochs
        by_chip = {}
        for epoch in epochs:
            for chip, addr in zip(epoch.chips.tolist(),
                                  epoch.addrs.tolist()):
                by_chip.setdefault(chip, set()).add(addr // LINE)
        return by_chip

    def test_partitioned_with_distributed_scheduler_has_no_sharing(self):
        workload = make_workload(
            accesses=[ArrayAccess(Array("A", 2 * MB), Partitioned(), 1.0)])
        by_chip = self._epoch_lines_by_chip(workload)
        for chip_a in by_chip:
            for chip_b in by_chip:
                if chip_a < chip_b:
                    assert not (by_chip[chip_a] & by_chip[chip_b])

    def test_partitioned_with_round_robin_scheduler_shares_pages(self):
        """The contrast policy: interleaved CTAs destroy chip locality."""
        # 1024 CTAs over 2 MB: each CTA's slice (2 KB) is sub-page, so
        # interleaved CTAs from different chips land in the same pages.
        workload = make_workload(
            accesses=[ArrayAccess(Array("A", 2 * MB), Partitioned(), 1.0)],
            scheduling="round-robin", ctas=1024)
        by_chip = self._epoch_lines_by_chip(workload)
        pages_by_chip = {c: {l // 32 for l in lines}
                         for c, lines in by_chip.items()}
        shared = pages_by_chip[0] & pages_by_chip[1]
        assert shared

    def test_broadcast_is_truly_shared(self):
        workload = make_workload(
            accesses=[ArrayAccess(Array("A", 2 * MB),
                                  Broadcast(hot_fraction=0.1), 1.0)])
        by_chip = self._epoch_lines_by_chip(workload)
        common = set.intersection(*by_chip.values())
        assert common

    def test_strided_is_falsely_shared(self):
        workload = make_workload(
            accesses=[ArrayAccess(Array("A", 2 * MB),
                                  Strided(interleave=64), 1.0)],
            ctas=64)
        by_chip = self._epoch_lines_by_chip(workload)
        # Lines are (mostly) chip-exclusive...
        overlap = len(by_chip[0] & by_chip[1])
        assert overlap < 0.05 * len(by_chip[0])
        # ...but pages are shared.
        pages0 = {l // 32 for l in by_chip[0]}
        pages1 = {l // 32 for l in by_chip[1]}
        assert pages0 & pages1

    def test_halo_shares_borders_only(self):
        workload = make_workload(
            accesses=[ArrayAccess(Array("A", 2 * MB),
                                  Halo(halo_fraction=0.3), 1.0)],
            ctas=8)
        by_chip = self._epoch_lines_by_chip(workload)
        shared = by_chip[0] & by_chip[1]
        assert shared
        assert len(shared) < 0.5 * len(by_chip[0])


class TestSimulateProgram:
    def test_runs_end_to_end(self):
        workload = make_workload()
        stats = simulate_program(workload, "memory-side", scale=1.0 / 16)
        assert stats.benchmark == "test-app"
        assert stats.cycles > 0

    def test_broadcast_heavy_program_prefers_sm_side(self):
        """A broadcast-dominated program should favour SM-side caching."""
        a = Array("priv", 8 * MB)
        b = Array("table", 2 * MB)  # small shared table -> replicable
        kernel = KernelProgram("lookup", [
            ArrayAccess(a, Partitioned(hot_fraction=0.2), weight=0.3),
            ArrayAccess(b, Broadcast(hot_fraction=0.5), weight=0.7),
        ], ctas=256, accesses_per_cta=128, intensity=4000.0)
        workload = ProgramWorkload("lookup-app", [kernel], num_chips=4,
                                   clusters_per_chip=8,
                                   accesses_per_epoch_per_chip=2048,
                                   iterations=2)
        mem = simulate_program(workload, "memory-side", scale=1.0 / 16)
        sm = simulate_program(workload, "sm-side", scale=1.0 / 16)
        assert mem.cycles > sm.cycles
