"""Unit tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.workloads import (
    REGION_FALSE,
    REGION_PRIVATE,
    REGION_TRUE,
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
    TraceGenerator,
    get,
)

LINE = 128
PAGE = 4096


def make_spec(weight_true=0.4, weight_false=0.3, weight_private=0.3,
              true_mb=2, false_mb=2, footprint_mb=8, epochs=2,
              iterations=1, **phase_kwargs):
    phase = PhaseSpec(weight_true=weight_true, weight_false=weight_false,
                      weight_private=weight_private, **phase_kwargs)
    return BenchmarkSpec(
        name="synthetic", suite="test", num_ctas=64,
        footprint_mb=footprint_mb, true_shared_mb=true_mb,
        false_shared_mb=false_mb, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=epochs),),
        iterations=iterations, seed=7)


def make_generator(spec=None, accesses=512, scale=1.0 / 64):
    return TraceGenerator(spec or make_spec(), num_chips=4,
                          clusters_per_chip=8, line_size=LINE,
                          page_size=PAGE,
                          accesses_per_epoch_per_chip=accesses, scale=scale)


class TestShape:
    def test_epoch_sizes(self):
        trace = make_generator().generate()
        assert len(trace) == 1
        assert len(trace[0].epochs) == 2
        epoch = trace[0].epochs[0]
        assert len(epoch) == 4 * 512
        assert len(epoch.chips) == len(epoch.addrs) == len(epoch.writes)

    def test_compute_cycles_follow_intensity(self):
        spec = make_spec(intensity=1000.0)
        epoch = make_generator(spec).generate()[0].epochs[0]
        assert epoch.compute_cycles == pytest.approx(512.0)

    def test_every_chip_contributes_equally(self):
        epoch = make_generator().generate()[0].epochs[0]
        counts = np.bincount(epoch.chips, minlength=4)
        assert all(count == 512 for count in counts)

    def test_kernel_launch_order(self):
        spec = make_spec(iterations=2)
        names = [k.name for k in make_generator(spec).generate()]
        assert names == ["k#0", "k#1"]

    def test_determinism(self):
        a = make_generator().generate()[0].epochs[0]
        b = make_generator().generate()[0].epochs[0]
        assert np.array_equal(a.addrs, b.addrs)
        assert np.array_equal(a.chips, b.chips)


class TestRegionSemantics:
    def test_region_classification_covers_all_addresses(self):
        generator = make_generator()
        epoch = generator.generate()[0].epochs[0]
        for addr in epoch.addrs[:200].tolist():
            assert generator.region_of(addr) in (
                REGION_TRUE, REGION_FALSE, REGION_PRIVATE)

    def test_true_region_is_shared_across_chips(self):
        generator = make_generator(make_spec(weight_true=1.0,
                                             weight_false=0.0,
                                             weight_private=0.0,
                                             hot_fraction=1.0))
        epoch = generator.generate()[0].epochs[0]
        lines_by_chip = {}
        for chip, addr in zip(epoch.chips.tolist(), epoch.addrs.tolist()):
            lines_by_chip.setdefault(chip, set()).add(addr // LINE)
        common = set.intersection(*lines_by_chip.values())
        assert common  # chips really do touch the same lines

    def test_false_region_shares_pages_not_lines(self):
        generator = make_generator(make_spec(weight_true=0.0,
                                             weight_false=1.0,
                                             weight_private=0.0,
                                             false_mb=4, true_mb=0,
                                             hot_fraction=1.0),
                                   accesses=2048)
        epoch = generator.generate()[0].epochs[0]
        line_chips = {}
        page_chips = {}
        for chip, addr in zip(epoch.chips.tolist(), epoch.addrs.tolist()):
            line_chips.setdefault(addr // LINE, set()).add(chip)
            page_chips.setdefault(addr // PAGE, set()).add(chip)
        # No line is ever touched by two chips...
        assert all(len(chips) == 1 for chips in line_chips.values())
        # ...but many pages are.
        shared_pages = sum(1 for chips in page_chips.values()
                           if len(chips) > 1)
        assert shared_pages > len(page_chips) / 2

    def test_private_region_is_chip_exclusive(self):
        generator = make_generator(make_spec(weight_true=0.0,
                                             weight_false=0.0,
                                             weight_private=1.0))
        epoch = generator.generate()[0].epochs[0]
        line_chips = {}
        for chip, addr in zip(epoch.chips.tolist(), epoch.addrs.tolist()):
            line_chips.setdefault(addr // LINE, set()).add(chip)
        assert all(len(chips) == 1 for chips in line_chips.values())

    def test_empty_regions_renormalize(self):
        spec = make_spec(weight_true=0.5, weight_false=0.25,
                         weight_private=0.25, true_mb=0, false_mb=2,
                         footprint_mb=4)
        generator = make_generator(spec)
        epoch = generator.generate()[0].epochs[0]
        regions = {generator.region_of(a) for a in epoch.addrs.tolist()}
        assert REGION_TRUE not in regions

    def test_all_regions_empty_raises(self):
        spec = make_spec(weight_true=1.0, weight_false=0.0,
                         weight_private=0.0, true_mb=0, false_mb=0,
                         footprint_mb=0.001)
        with pytest.raises(ValueError):
            make_generator(spec).generate()


class TestHotCold:
    def test_hot_set_concentrates_accesses(self):
        spec = make_spec(weight_true=1.0, weight_false=0.0,
                         weight_private=0.0, hot_fraction=1.0,
                         hot_fraction_true=0.1, hot_weight=0.9)
        generator = make_generator(spec, accesses=4096)
        epoch = generator.generate()[0].epochs[0]
        lines = np.array(epoch.addrs) // LINE
        hot_lines = int(generator._true_lines * 0.1)
        hot_share = float(np.mean(lines < hot_lines))
        assert hot_share == pytest.approx(0.9, abs=0.05)

    def test_affinity_biases_toward_own_segment(self):
        spec = make_spec(weight_true=1.0, weight_false=0.0,
                         weight_private=0.0, true_mb=4, footprint_mb=8,
                         hot_fraction=1.0, true_affinity=0.8)
        generator = make_generator(spec, accesses=4096)
        epoch = generator.generate()[0].epochs[0]
        seg_lines = (4 * 1024 * 1024 // 64) // LINE // 4  # scaled segment
        own = 0
        total = 0
        for chip, addr in zip(epoch.chips.tolist(), epoch.addrs.tolist()):
            segment = (addr // LINE) // seg_lines
            own += int(segment == chip)
            total += 1
        assert own / total > 0.7  # 0.8 + 0.2/4 = 0.85 expected


class TestScaling:
    def test_scale_shrinks_footprint(self):
        big = make_generator(scale=1.0)
        small = make_generator(scale=1.0 / 16)
        assert small.total_lines < big.total_lines

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            TraceGenerator(make_spec(), num_chips=0, clusters_per_chip=8)
        with pytest.raises(ValueError):
            TraceGenerator(make_spec(), num_chips=4, clusters_per_chip=8,
                           accesses_per_epoch_per_chip=0)


class TestSuiteTraces:
    def test_bfs_alternates_kernels(self):
        generator = TraceGenerator(get("BFS"), 4, 32,
                                   accesses_per_epoch_per_chip=256,
                                   scale=1.0 / 64)
        names = [k.name for k in generator.kernels()]
        assert names[0].startswith("BFS.K1")
        assert names[1].startswith("BFS.K2")
        assert len(names) == 2 * get("BFS").iterations
