"""Unit tests for trace serialization and statistics."""

import numpy as np
import pytest

from repro.sim import SimulationEngine, make_organization, scaled_config
from repro.arch import baseline
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec, TraceGenerator
from repro.workloads.traceio import load_trace, save_trace, trace_statistics


def make_trace(epochs=2, iterations=2):
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3,
                      write_fraction=0.25)
    spec = BenchmarkSpec(
        name="io-tiny", suite="test", num_ctas=8, footprint_mb=4,
        true_shared_mb=1, false_shared_mb=1, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=epochs),),
        iterations=iterations, seed=29)
    generator = TraceGenerator(spec, num_chips=4, clusters_per_chip=8,
                               accesses_per_epoch_per_chip=256,
                               scale=1.0 / 16)
    return list(generator.kernels())


class TestSaveLoad:
    def test_roundtrip_preserves_everything(self, tmp_path):
        kernels = make_trace()
        path = tmp_path / "trace.npz"
        save_trace(str(path), kernels)
        loaded = load_trace(str(path))
        assert [k.name for k in loaded] == [k.name for k in kernels]
        for original, restored in zip(kernels, loaded):
            assert len(original.epochs) == len(restored.epochs)
            for a, b in zip(original.epochs, restored.epochs):
                assert np.array_equal(a.chips, b.chips)
                assert np.array_equal(a.addrs, b.addrs)
                assert np.array_equal(a.writes, b.writes)
                assert a.compute_cycles == pytest.approx(b.compute_cycles)

    def test_loaded_trace_simulates_identically(self, tmp_path):
        kernels = make_trace()
        path = tmp_path / "trace.npz"
        save_trace(str(path), kernels)
        config = scaled_config(baseline(), 1.0 / 16)

        def run(trace):
            engine = SimulationEngine(
                config, make_organization("memory-side", config))
            return engine.run(trace, benchmark="io-tiny")

        direct = run(make_trace())
        replayed = run(load_trace(str(path)))
        assert direct.cycles == pytest.approx(replayed.cycles)
        assert direct.llc_hits == replayed.llc_hits

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(str(tmp_path / "x.npz"), [])


class TestStatistics:
    def test_volume_counts(self):
        kernels = make_trace(epochs=2, iterations=2)
        stats = trace_statistics(kernels)
        assert stats.kernels == 2
        assert stats.epochs == 4
        assert stats.accesses == 4 * 256 * 4
        assert 0.15 < stats.write_fraction < 0.35

    def test_sharing_decomposition_sums(self):
        stats = trace_statistics(make_trace())
        assert (stats.true_shared_lines + stats.false_shared_lines
                + stats.non_shared_lines) == stats.distinct_lines
        fractions = stats.sharing_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert stats.true_shared_lines > 0
        assert stats.false_shared_lines > 0

    def test_accesses_per_chip_balanced(self):
        stats = trace_statistics(make_trace())
        counts = list(stats.accesses_per_chip.values())
        assert len(counts) == 4
        assert max(counts) == min(counts)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            trace_statistics([])
