"""Unit tests for benchmark specifications (Table 4)."""

import pytest

from repro.workloads import (
    BENCHMARKS,
    MP_BENCHMARKS,
    SP_BENCHMARKS,
    SUITE,
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
    get,
)


class TestTable4Fidelity:
    """The suite must carry the paper's published characteristics."""

    #: (name, ctas, footprint, true_shared, false_shared) from Table 4.
    TABLE4 = [
        ("RN", 512, 21, 11, 4), ("AN", 1024, 20, 9, 3),
        ("SN", 512, 18, 2, 13), ("CFD", 4031, 97, 9, 33),
        ("BFS", 1954, 37, 10, 14), ("3DC", 2048, 98, 17, 38),
        ("BS", 480, 76, 0, 56), ("BT", 48096, 31, 4, 19),
        ("SRAD", 65536, 753, 30, 3), ("GEMM", 2048, 174, 14, 21),
        ("LUD", 131068, 317, 38, 51), ("STEN", 1024, 205, 18, 17),
        ("3MM", 4096, 109, 12, 7), ("BP", 65536, 76, 4, 0),
        ("DWT", 91373, 207, 3, 10), ("NN", 60000, 1388, 154, 0),
    ]

    @pytest.mark.parametrize("name,ctas,footprint,true_mb,false_mb", TABLE4)
    def test_row(self, name, ctas, footprint, true_mb, false_mb):
        spec = get(name)
        assert spec.num_ctas == ctas
        assert spec.footprint_mb == footprint
        assert spec.true_shared_mb == true_mb
        assert spec.false_shared_mb == false_mb

    def test_sixteen_benchmarks(self):
        assert len(SUITE) == 16

    def test_group_split_matches_paper(self):
        assert [b.name for b in SP_BENCHMARKS] == \
            ["RN", "AN", "SN", "CFD", "BFS", "3DC", "BS", "BT"]
        assert [b.name for b in MP_BENCHMARKS] == \
            ["SRAD", "GEMM", "LUD", "STEN", "3MM", "BP", "DWT", "NN"]

    def test_bfs_has_two_alternating_kernels(self):
        bfs = get("BFS")
        assert len(bfs.kernels) == 2
        assert bfs.iterations >= 2

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get("nope")

    def test_benchmarks_index_matches_suite(self):
        assert set(BENCHMARKS) == {b.name for b in SUITE}


class TestPhaseSpec:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PhaseSpec(weight_true=0.5, weight_false=0.5, weight_private=0.5)

    def test_region_hot_fraction_overrides(self):
        phase = PhaseSpec(weight_true=1.0, weight_false=0.0,
                          weight_private=0.0, hot_fraction=0.2,
                          hot_fraction_true=0.5)
        assert phase.region_hot_fraction("true") == 0.5
        assert phase.region_hot_fraction("false") == 0.2

    def test_rejects_out_of_range_affinity(self):
        with pytest.raises(ValueError):
            PhaseSpec(weight_true=1.0, weight_false=0.0, weight_private=0.0,
                      true_affinity=1.5)

    def test_rejects_nonpositive_intensity(self):
        with pytest.raises(ValueError):
            PhaseSpec(weight_true=1.0, weight_false=0.0, weight_private=0.0,
                      intensity=0.0)


class TestBenchmarkSpec:
    def test_private_mb_is_remainder(self):
        spec = get("CFD")
        assert spec.private_mb == pytest.approx(97 - 9 - 33)

    def test_shared_cannot_exceed_footprint(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="x", suite="s", num_ctas=1, footprint_mb=10,
                true_shared_mb=8, false_shared_mb=8, preference="sm-side",
                kernels=(KernelSpec(name="k", phase=PhaseSpec(
                    weight_true=1.0, weight_false=0.0,
                    weight_private=0.0)),))

    def test_effective_seed_is_stable_and_distinct(self):
        assert get("RN").effective_seed == get("RN").effective_seed
        assert get("RN").effective_seed != get("AN").effective_seed

    def test_scaled_input_scales_all_regions(self):
        spec = get("CFD").scaled_input(2.0)
        assert spec.footprint_mb == 194
        assert spec.true_shared_mb == 18
        assert spec.false_shared_mb == 66
        assert "x2" in spec.name

    def test_scaled_input_keeps_seed(self):
        spec = get("CFD")
        assert spec.scaled_input(2.0).effective_seed == spec.effective_seed

    def test_scaled_input_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            get("CFD").scaled_input(0)

    def test_region_bytes_partition_footprint(self):
        spec = get("CFD")
        regions = spec.region_bytes(scale=1.0)
        total_mb = sum(regions.values()) / (1024 * 1024)
        assert total_mb == pytest.approx(spec.footprint_mb, rel=0.01)

    def test_table4_row_shape(self):
        row = get("RN").table4_row()
        assert row["benchmark"] == "RN"
        assert row["suite"] == "Tango"
        assert row["preference"] == "sm-side"
