"""Property-based tests for kernel-program access patterns."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import Broadcast, Halo, Partitioned, Strided

rngs = st.integers(min_value=0, max_value=2 ** 31 - 1).map(
    np.random.default_rng)

pattern_strategies = st.one_of(
    st.builds(Partitioned,
              hot_fraction=st.floats(0.01, 1.0),
              hot_weight=st.floats(0.0, 1.0)),
    st.builds(Broadcast,
              hot_fraction=st.floats(0.01, 1.0),
              hot_weight=st.floats(0.0, 1.0)),
    st.builds(Strided, interleave=st.integers(1, 64),
              hot_fraction=st.floats(0.01, 1.0)),
    st.builds(Halo, halo_fraction=st.floats(0.0, 1.0),
              hot_fraction=st.floats(0.01, 1.0)),
)


@given(pattern_strategies,
       st.integers(0, 255),
       st.integers(1, 256),
       st.integers(1, 100_000),
       st.integers(1, 200),
       rngs)
@settings(max_examples=300, deadline=None)
def test_samples_stay_in_bounds(pattern, cta, num_ctas, num_lines, count,
                                rng):
    cta = cta % num_ctas
    lines = pattern.sample(cta, num_ctas, num_lines, count, rng)
    assert len(lines) == count
    assert int(lines.min()) >= 0
    assert int(lines.max()) < num_lines


@given(st.integers(0, 63), st.integers(1, 64), st.integers(64, 100_000),
       rngs)
@settings(max_examples=100, deadline=None)
def test_partitioned_ctas_are_disjoint(cta, num_ctas, num_lines, rng):
    cta = cta % num_ctas
    other = (cta + 1) % num_ctas
    if other == cta:
        return
    pattern = Partitioned(hot_fraction=1.0, hot_weight=0.0)
    a = set(pattern.sample(cta, num_ctas, num_lines, 200, rng).tolist())
    b = set(pattern.sample(other, num_ctas, num_lines, 200, rng).tolist())
    # Slices can only collide at the clamped tail of the array.
    slice_lines = max(1, num_lines // num_ctas)
    if (cta + 1) * slice_lines <= num_lines and \
            (other + 1) * slice_lines <= num_lines:
        assert not a & b


@given(st.integers(1, 64), st.integers(256, 100_000), rngs)
@settings(max_examples=100, deadline=None)
def test_strided_lanes_never_collide(interleave, num_lines, rng):
    pattern = Strided(interleave=interleave, hot_fraction=1.0)
    lanes = {}
    for cta in range(min(4, interleave)):
        lines = pattern.sample(cta, 64, num_lines, 100, rng)
        lanes[cta] = {int(l) % interleave for l in lines.tolist()}
    values = list(lanes.values())
    for i, a in enumerate(values):
        for b in values[i + 1:]:
            assert not a & b
