"""Tests for the `python -m repro` command-line entry point."""

import pytest

from repro.__main__ import main
from repro.experiments import REGISTRY


class TestCLI:
    def test_list_enumerates_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_an_experiment_fast(self, capsys):
        assert main(["fig12", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "completed in" in out


class TestRegistry:
    def test_registry_covers_every_experiment_module(self):
        import repro.experiments as experiments
        registered = {module.__name__ for module in REGISTRY.values()}
        exported = {getattr(experiments, name).__name__
                    for name in experiments.__all__
                    if name != "REGISTRY"}
        assert registered == exported

    def test_registry_modules_expose_the_experiment_api(self):
        for module in REGISTRY.values():
            assert callable(module.run_experiment)
            assert callable(module.format_report)


class TestCSVExport:
    def test_csv_flag_writes_file(self, tmp_path, capsys):
        out = tmp_path / "fig12.csv"
        # Figure 12's result has no exportable shape; use table4 instead.
        assert main(["table4", "--fast", "--csv", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
