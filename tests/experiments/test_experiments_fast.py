"""Fast-mode smoke tests for every experiment module.

These run each paper table/figure experiment at reduced trace density
(``fast=True``) and check that the outputs have the right structure and
basic shape.  The full-density runs (and the strict shape assertions)
live in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    ablations,
    fig01_motivation,
    fig08_speedup,
    fig09_llc_allocation,
    fig10_bandwidth_breakdown,
    fig11_working_set,
    fig12_time_varying,
    fig13_input_sensitivity,
    fig14_sensitivity,
    table04_workloads,
)
from repro.workloads import SUITE


@pytest.fixture(scope="module", autouse=True)
def shared_cache():
    # The module shares one runner cache: figures 1/8/9/10 reuse runs.
    yield


class TestFig01:
    def test_structure_and_report(self):
        result = fig01_motivation.run_experiment(fast=True)
        assert set(result) == {"performance", "miss_rate", "bandwidth"}
        assert set(result["performance"]) == {"SP", "MP", "all"}
        report = fig01_motivation.format_report(result)
        assert "Figure 1a" in report
        assert "Figure 1c" in report

    def test_sp_group_prefers_sm_side_even_at_low_density(self):
        result = fig01_motivation.run_experiment(fast=True)
        assert result["performance"]["SP"]["sm-side"] > 1.0


class TestFig08:
    def test_headline_and_table(self):
        result = fig08_speedup.run_experiment(fast=True)
        assert len(result["benchmarks"]) == len(SUITE)
        report = fig08_speedup.format_report(result)
        assert "SAC vs memory-side" in report
        for bench in result["benchmarks"]:
            assert result["speedups"][(bench, "memory-side")] == 1.0


class TestFig09:
    def test_memory_side_is_all_local(self):
        result = fig09_llc_allocation.run_experiment(fast=True)
        for bench, orgs in result["remote_fraction"].items():
            assert orgs["memory-side"] == pytest.approx(0.0), bench
        assert "Figure 9" in fig09_llc_allocation.format_report(result)


class TestFig10:
    def test_origins_cover_every_benchmark(self):
        result = fig10_bandwidth_breakdown.run_experiment(fast=True)
        assert len(result["breakdown"]) == len(SUITE)
        some = next(iter(result["breakdown"].values()))
        assert set(some["memory-side"]) == {
            "local_llc", "remote_llc", "local_mem", "remote_mem"}


class TestFig11:
    def test_profiles_and_capacity_line(self):
        result = fig11_working_set.run_experiment(
            fast=True, window_cycles=(1000, 10000))
        assert result["llc_capacity_mb"] == pytest.approx(16.0)
        for bench, points in result["profiles"].items():
            assert len(points) == 2, bench
        assert "Figure 11" in fig11_working_set.format_report(result)


class TestFig12:
    def test_alternating_kernels_reported(self):
        result = fig12_time_varying.run_experiment(fast=True)
        kernels = [l["kernel"] for l in result["launches"]]
        assert any("K1" in k for k in kernels)
        assert any("K2" in k for k in kernels)
        assert "overall" in result


class TestFig13:
    def test_series_cover_requested_benchmarks(self):
        result = fig13_input_sensitivity.run_experiment(
            fast=True, sp_benchmarks=("RN",), mp_benchmarks=("NN",))
        assert set(result["series"]) == {"RN", "NN"}
        # RN scales the LLC instead of the input.
        assert len(result["series"]["RN"]) == 4


class TestFig14:
    def test_sweeps_present(self):
        result = fig14_sensitivity.run_experiment(
            fast=True, benchmarks=("RN", "NN"))
        assert set(result["sweeps"]) == {
            "inter_chip_bandwidth", "llc_capacity", "memory_interface",
            "coherence", "gpu_count", "sectored_cache", "page_size"}
        report = fig14_sensitivity.format_report(result)
        assert "inter_chip_bandwidth" in report


class TestTable04:
    def test_rows_cover_suite(self):
        result = table04_workloads.run_experiment(fast=True)
        assert len(result["rows"]) == len(SUITE)
        report = table04_workloads.format_report(result)
        assert "Table 4" in report


class TestAblations:
    def test_variants_and_oracle(self):
        result = ablations.run_experiment(fast=True, benchmarks=("RN", "NN"))
        row = result["per_benchmark"]["RN"]
        assert set(row) == {"sac", "sac-no-crd", "sac-no-lsu",
                            "sac-free-reconfig", "oracle"}
        assert result["aggregate"]["oracle"] >= 1.0
