"""Tests for shared experiment plumbing."""

import pytest

from repro.analysis.runner import cache_size, clear_cache
from repro.experiments.common import (
    FAST_ACCESSES_PER_EPOCH,
    SWEEP_MP,
    SWEEP_SP,
    run_suite,
    trace_density,
)
from repro.sim.run import DEFAULT_ACCESSES_PER_EPOCH
from repro.workloads import get


class TestTraceDensity:
    def test_fast_mode_is_cheaper(self):
        assert trace_density(True) == FAST_ACCESSES_PER_EPOCH
        assert trace_density(False) == DEFAULT_ACCESSES_PER_EPOCH
        assert trace_density(True) < trace_density(False)


class TestSweepSubsets:
    def test_sweep_benchmarks_exist_and_cover_both_groups(self):
        for name in SWEEP_SP:
            assert get(name).preference == "sm-side"
        for name in SWEEP_MP:
            assert get(name).preference == "memory-side"


class TestRunSuite:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_cache()
        yield
        clear_cache()

    def test_results_are_keyed_and_cached(self):
        specs = [get("BS")]
        results = run_suite(["memory-side"], specs=specs, fast=True)
        assert set(results) == {("BS", "memory-side")}
        assert cache_size() == 1
        # A second call reuses the cache (same object identity).
        again = run_suite(["memory-side"], specs=specs, fast=True)
        assert again[("BS", "memory-side")] is results[("BS", "memory-side")]

    def test_fast_and_full_density_are_distinct_cache_entries(self):
        specs = [get("BS")]
        run_suite(["memory-side"], specs=specs, fast=True)
        before = cache_size()
        run_suite(["memory-side"], specs=specs,
                  scale=1.0 / 8, fast=True)
        assert cache_size() > before
