"""Unit tests for experiment helper functions (no simulation)."""

import math

import pytest

from repro.experiments.common import ALL_ORGANIZATIONS, group_names
from repro.experiments.correlation import pearson
from repro.experiments.fig13_input_sensitivity import (
    LLC_SCALED,
    MP_FACTORS,
    SP_FACTORS,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_no_correlation_orthogonal(self):
        r = pearson([1, 2, 3, 4], [1, -1, 1, -1])
        assert abs(r) < 0.5

    def test_known_value(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [1.0, 3.0, 2.0, 4.0]
        assert pearson(xs, ys) == pytest.approx(0.8)

    def test_bounds(self):
        xs = [1.0, 5.0, 2.0, 8.0, 3.0]
        ys = [2.0, 4.0, 4.0, 9.0, 1.0]
        assert -1.0 <= pearson(xs, ys) <= 1.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_rejects_zero_variance(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])


class TestGroupNames:
    def test_groups_partition_the_suite(self):
        groups = group_names()
        assert len(groups["SP"]) == 8
        assert len(groups["MP"]) == 8
        assert groups["all"] == groups["SP"] + groups["MP"]
        assert not set(groups["SP"]) & set(groups["MP"])

    def test_all_organizations_order(self):
        assert ALL_ORGANIZATIONS[0] == "memory-side"
        assert ALL_ORGANIZATIONS[-1] == "sac"


class TestFig13Constants:
    def test_factor_ranges_match_paper(self):
        # Paper: SP from x8 down to /4; MP from x4 down to /32.
        assert max(SP_FACTORS) == 8.0
        assert min(SP_FACTORS) == 0.25
        assert max(MP_FACTORS) == 4.0
        assert math.isclose(min(MP_FACTORS), 1 / 32)

    def test_llc_scaled_benchmarks_match_paper(self):
        # Paper: RN, AN, SN and BT cannot change input; scale the LLC.
        assert set(LLC_SCALED) == {"RN", "AN", "SN", "BT"}
