"""Partition occupancy counters stay consistent under mixed workloads.

``_select_victim`` now reads per-set per-partition occupancy counters
instead of rescanning the set per candidate; these tests drive every
mutation path (fill, evict, invalidate, invalidate_partition, flush,
repartition, reset) and assert the counters always equal a recount.
"""

import numpy as np
import pytest

from repro.arch.config import CacheConfig
from repro.cache.cache import PartitionFullError, SetAssociativeCache

LINE = 128


def make_cache(num_sets=16, assoc=8):
    config = CacheConfig(size_bytes=num_sets * assoc * LINE,
                         associativity=assoc, line_size=LINE)
    return SetAssociativeCache(config, "part")


def recount(cache):
    occupancy = []
    for cache_set in cache._sets:
        counts = {}
        for line in cache_set.values():
            counts[line.partition] = counts.get(line.partition, 0) + 1
        occupancy.append(counts)
    return occupancy


def assert_counters_consistent(cache):
    if cache._partition_ways is None:
        assert cache._part_occ is None
    else:
        assert cache._part_occ == recount(cache)


def test_counters_match_recount_after_mixed_workload():
    rng = np.random.default_rng(42)
    cache = make_cache()
    cache.set_partition({0: 4, 1: 3, 2: 1})
    assert_counters_consistent(cache)
    addrs = rng.integers(0, 16 * 8 * 3, size=2000) * LINE
    partitions = rng.integers(0, 3, size=2000)
    writes = rng.random(2000) < 0.3
    for i in range(2000):
        try:
            cache.access(int(addrs[i]), bool(writes[i]),
                         partition=int(partitions[i]))
        except PartitionFullError:
            pass
        if i % 251 == 0:
            assert_counters_consistent(cache)
        if i % 397 == 0:
            cache.invalidate(int(addrs[rng.integers(0, i + 1)]))
            assert_counters_consistent(cache)
    assert_counters_consistent(cache)
    occupancy = cache.occupancy_by_partition()
    flat = {}
    for counts in cache._part_occ:
        for partition, count in counts.items():
            flat[partition] = flat.get(partition, 0) + count
    assert flat == occupancy


def test_counters_survive_invalidate_partition_and_flush():
    rng = np.random.default_rng(43)
    cache = make_cache()
    cache.set_partition({0: 5, 1: 3})
    for addr in rng.integers(0, 500, size=600) * LINE:
        cache.access(int(addr), partition=int(addr // LINE) % 2)
    assert_counters_consistent(cache)
    cache.invalidate_partition(1)
    assert_counters_consistent(cache)
    assert 1 not in cache.occupancy_by_partition()
    cache.flush()
    assert_counters_consistent(cache)
    assert cache.occupancy() == 0


def test_counters_rebuilt_on_repartition_of_warm_cache():
    rng = np.random.default_rng(44)
    cache = make_cache()
    # Warm up unpartitioned: no counters maintained.
    for addr in rng.integers(0, 400, size=500) * LINE:
        cache.access(int(addr))
    assert cache._part_occ is None
    # Partitioning a warm cache recounts the resident (unpartitioned)
    # lines so lazy eviction of over-provisioned lines stays exact.
    cache.set_partition({0: 6, 1: 2})
    assert_counters_consistent(cache)
    for addr in rng.integers(0, 400, size=500) * LINE:
        cache.access(int(addr), partition=1)
    assert_counters_consistent(cache)
    cache.set_partition(None)
    assert cache._part_occ is None
    cache.set_partition({0: 4, 1: 4})
    assert_counters_consistent(cache)
    cache.reset()
    assert_counters_consistent(cache)
    assert cache.occupancy() == 0


def test_zero_way_partition_still_raises():
    cache = make_cache(num_sets=4, assoc=2)
    cache.set_partition({0: 2, 3: 0})
    cache.access(0 * LINE, partition=0)
    with pytest.raises(PartitionFullError):
        for i in range(8):
            cache.access((100 + i * 4) * LINE, partition=3)
