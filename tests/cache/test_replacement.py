"""Unit tests for replacement policies and the way-organized cache."""

import pytest

from repro.arch import CacheConfig
from repro.cache import (
    LRUPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    WayOrganizedCache,
    make_cache,
    make_policy,
)
from repro.cache.cache import SetAssociativeCache


class TestPolicyFactory:
    def test_make_policy_by_name(self):
        assert isinstance(make_policy("lru", 4), LRUPolicy)
        assert isinstance(make_policy("tree-plru", 4), TreePLRUPolicy)
        assert isinstance(make_policy("srrip", 4), SRRIPPolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="srrip"):
            make_policy("random", 4)

    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lru", 0)


class TestLRUPolicy:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_hit(0)
        assert policy.victim([0, 1, 2, 3]) == 1

    def test_victim_respects_candidates(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        assert policy.victim([2, 3]) == 2

    def test_untouched_way_is_coldest(self):
        policy = LRUPolicy(4)
        policy.on_fill(1)
        assert policy.victim([0, 1]) == 0


class TestTreePLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(6)

    def test_victim_avoids_recent_way(self):
        policy = TreePLRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_hit(2)
        assert policy.victim([0, 1, 2, 3]) != 2

    def test_round_robin_like_behaviour_under_sweep(self):
        policy = TreePLRUPolicy(4)
        victims = []
        for step in range(8):
            way = policy.victim([0, 1, 2, 3])
            victims.append(way)
            policy.on_fill(way)
        # The tree cycles through all ways rather than camping on one.
        assert set(victims) == {0, 1, 2, 3}

    def test_fallback_when_tree_points_outside_candidates(self):
        policy = TreePLRUPolicy(4)
        pointed = policy.victim([0, 1, 2, 3])
        others = [w for w in range(4) if w != pointed]
        assert policy.victim(others) in others


class TestSRRIP:
    def test_new_lines_are_near_eviction(self):
        policy = SRRIPPolicy(4)
        policy.on_fill(0)
        policy.on_hit(1)  # way 1 promoted to RRPV 0
        # Way 0 (RRPV 2) ages out before way 1 (RRPV 0).
        assert policy.victim([0, 1]) == 0

    def test_scan_resistance(self):
        """A one-shot scan cannot displace a re-referenced line."""
        policy = SRRIPPolicy(2)
        policy.on_fill(0)
        policy.on_hit(0)  # hot line
        policy.on_fill(1)  # scan line
        assert policy.victim([0, 1]) == 1

    def test_aging_eventually_selects_someone(self):
        policy = SRRIPPolicy(4)
        for way in range(4):
            policy.on_fill(way)
            policy.on_hit(way)
        assert policy.victim([0, 1, 2, 3]) in (0, 1, 2, 3)


def make_way_cache(replacement="srrip", size=4096, ways=4):
    return make_cache(CacheConfig(size_bytes=size, associativity=ways,
                                  line_size=128, replacement=replacement))


class TestWayOrganizedCache:
    def test_factory_dispatches_by_policy(self):
        assert isinstance(make_way_cache("lru"), SetAssociativeCache)
        assert isinstance(make_way_cache("srrip"), WayOrganizedCache)
        assert isinstance(make_way_cache("tree-plru"), WayOrganizedCache)

    @pytest.mark.parametrize("replacement", ["tree-plru", "srrip"])
    def test_basic_hit_miss(self, replacement):
        cache = make_way_cache(replacement)
        assert cache.access(0x1000).miss
        assert cache.access(0x1000).hit
        assert cache.probe(0x1000)

    @pytest.mark.parametrize("replacement", ["tree-plru", "srrip"])
    def test_capacity_eviction(self, replacement):
        cache = make_way_cache(replacement)
        stride = 8 * 128  # same set
        for i in range(5):
            cache.access(i * stride)
        assert cache.occupancy() == 4
        assert cache.stats.evictions == 1

    def test_dirty_eviction_reports_writeback(self):
        cache = make_way_cache("srrip", size=2048, ways=2)
        stride = 8 * 128
        cache.access(0, is_write=True)
        cache.access(stride)
        result = cache.access(2 * stride)
        assert result.evicted_addr is not None
        # The evicted address maps back to the same set.
        assert (result.evicted_addr // 128) % 8 == 0

    def test_flush_and_invalidate(self):
        cache = make_way_cache("tree-plru")
        cache.access(0, is_write=True)
        cache.access(0x80)
        assert cache.invalidate(0x80)
        invalidated, dirty = cache.flush()
        assert invalidated == 1
        assert dirty == 1
        assert cache.occupancy() == 0

    def test_partitioning(self):
        cache = make_way_cache("srrip")
        cache.set_partition({0: 2, 1: 2})
        stride = 8 * 128
        for i in range(4):
            cache.access(i * stride, partition=0)
        assert cache.occupancy_by_partition()[0] == 2

    def test_sectored_variant(self):
        cache = make_cache(CacheConfig(
            size_bytes=4096, associativity=4, line_size=128,
            sectored=True, sectors_per_line=4, replacement="srrip"))
        cache.access(0)
        assert cache.access(32).sector_miss
        assert cache.access(32).hit

    def test_reset(self):
        cache = make_way_cache("srrip")
        cache.access(0)
        cache.reset()
        assert cache.occupancy() == 0
        assert cache.stats.accesses == 0

    def test_resident_lines_roundtrip(self):
        cache = make_way_cache("tree-plru")
        for addr in (0, 0x80, 0x2480):
            cache.access(addr)
        resident = {addr for addr, _ in cache.resident_lines()}
        assert resident == {0, 0x80, 0x2480 & ~127}


class TestPolicyComparison:
    def test_srrip_beats_lru_on_scanning_mix(self):
        """SRRIP's raison d'etre: scans should not flush the hot set."""
        import random
        rng = random.Random(42)
        configs = {name: make_cache(CacheConfig(
            size_bytes=8192, associativity=8, line_size=128,
            replacement=name)) for name in ("lru", "srrip")}
        hits = {name: 0 for name in configs}
        hot = [i * 128 for i in range(48)]          # fits comfortably
        scan = [0x100000 + i * 128 for i in range(4096)]
        scan_pos = 0
        for step in range(20000):
            if rng.random() < 0.5:
                addr = rng.choice(hot)
            else:
                addr = scan[scan_pos % len(scan)]
                scan_pos += 1
            for name, cache in configs.items():
                if cache.access(addr).hit:
                    hits[name] += 1
        assert hits["srrip"] > hits["lru"]

    def test_plru_approximates_lru(self):
        """On a friendly workload PLRU should be within a few % of LRU."""
        import random
        rng = random.Random(7)
        configs = {name: make_cache(CacheConfig(
            size_bytes=8192, associativity=8, line_size=128,
            replacement=name)) for name in ("lru", "tree-plru")}
        hits = {name: 0 for name in configs}
        lines = [i * 128 for i in range(96)]
        for step in range(20000):
            addr = rng.choice(lines)
            for name, cache in configs.items():
                if cache.access(addr).hit:
                    hits[name] += 1
        assert hits["tree-plru"] > 0.85 * hits["lru"]
