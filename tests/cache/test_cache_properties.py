"""Property-based tests for the cache substrate (hypothesis)."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import CacheConfig
from repro.cache import SetAssociativeCache

LINE = 128
SETS = 8
WAYS = 4
CAPACITY = SETS * WAYS * LINE

addresses = st.integers(min_value=0, max_value=64 * 1024)
access_streams = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=300)


def make_cache(**kwargs):
    return SetAssociativeCache(CacheConfig(
        size_bytes=CAPACITY, associativity=WAYS, line_size=LINE, **kwargs))


class LRUReference:
    """An obviously-correct reference model: per-set ordered dicts."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(SETS)]

    def access(self, addr):
        line = addr // LINE
        index, tag = line % SETS, line // SETS
        cache_set = self.sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return True
        if len(cache_set) >= WAYS:
            cache_set.popitem(last=False)
        cache_set[tag] = True
        return False


@given(access_streams)
@settings(max_examples=200, deadline=None)
def test_matches_lru_reference_model(stream):
    cache = make_cache()
    reference = LRUReference()
    for addr, is_write in stream:
        expected_hit = reference.access(addr)
        assert cache.access(addr, is_write).hit == expected_hit


@given(access_streams)
@settings(max_examples=100, deadline=None)
def test_occupancy_never_exceeds_capacity(stream):
    cache = make_cache()
    for addr, is_write in stream:
        cache.access(addr, is_write)
        assert cache.occupancy() <= SETS * WAYS


@given(access_streams)
@settings(max_examples=100, deadline=None)
def test_stats_are_consistent(stream):
    cache = make_cache()
    for addr, is_write in stream:
        cache.access(addr, is_write)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses
    assert stats.dirty_evictions <= stats.evictions
    assert stats.evictions <= stats.fills


@given(access_streams)
@settings(max_examples=100, deadline=None)
def test_accessed_line_is_always_resident_afterwards(stream):
    cache = make_cache()
    for addr, is_write in stream:
        cache.access(addr, is_write)
        assert cache.probe(addr)


@given(access_streams)
@settings(max_examples=100, deadline=None)
def test_flush_accounts_for_every_resident_line(stream):
    cache = make_cache()
    for addr, is_write in stream:
        cache.access(addr, is_write)
    resident = cache.occupancy()
    dirty_resident = sum(1 for _addr, line in cache.resident_lines()
                         if line.dirty)
    invalidated, dirty = cache.flush()
    assert invalidated == resident
    assert dirty == dirty_resident
    assert cache.occupancy() == 0


@given(access_streams, st.integers(min_value=0, max_value=WAYS))
@settings(max_examples=100, deadline=None)
def test_partition_occupancy_respects_way_limits(stream, remote_ways):
    cache = make_cache()
    cache.set_partition({0: WAYS - remote_ways, 1: remote_ways})
    for i, (addr, is_write) in enumerate(stream):
        partition = i % 2
        limit = remote_ways if partition else WAYS - remote_ways
        if limit == 0:
            continue
        cache.access(addr, is_write, partition=partition)
    for count_partition in (0, 1):
        limit = remote_ways if count_partition else WAYS - remote_ways
        # Per-set occupancy of a partition never exceeds its way limit
        # (checked globally: total <= sets * limit).
        occupancy = cache.occupancy_by_partition().get(count_partition, 0)
        assert occupancy <= SETS * limit


@given(access_streams)
@settings(max_examples=50, deadline=None)
def test_sectored_cache_line_count_matches_conventional(stream):
    """Sectors change hit accounting but not which lines are resident."""
    conventional = make_cache()
    sectored = make_cache(sectored=True, sectors_per_line=4)
    for addr, is_write in stream:
        conventional.access(addr, is_write)
        sectored.access(addr, is_write)
    conventional_lines = {a for a, _l in conventional.resident_lines()}
    sectored_lines = {a for a, _l in sectored.resident_lines()}
    assert conventional_lines == sectored_lines
