"""Unit tests for the set-associative cache substrate."""

import pytest

from repro.arch import CacheConfig
from repro.cache import PartitionFullError, SetAssociativeCache


def make_cache(size=4096, ways=4, line=128, **kwargs):
    return SetAssociativeCache(
        CacheConfig(size_bytes=size, associativity=ways, line_size=line,
                    **kwargs))


class TestBasicHitMiss:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert cache.access(0x1000).miss
        assert cache.access(0x1000).hit

    def test_same_line_different_offsets_share_residency(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x107F).hit  # last byte of the same line

    def test_adjacent_lines_are_distinct(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x1080).miss

    def test_stats_track_hits_and_misses(self):
        cache = make_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x80)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_probe_does_not_touch_stats_or_lru(self):
        cache = make_cache()
        cache.access(0x1000)
        before = cache.stats.accesses
        assert cache.probe(0x1000)
        assert not cache.probe(0x2000)
        assert cache.stats.accesses == before


class TestLRU:
    def test_lru_victim_is_least_recently_used(self):
        # 4-way cache, 8 sets; same set = stride of sets*line = 1024 bytes.
        cache = make_cache(size=4096, ways=4, line=128)
        stride = 8 * 128
        for i in range(4):
            cache.access(i * stride)
        cache.access(0)  # refresh line 0 -> LRU is line at 1*stride
        result = cache.access(4 * stride)  # forces an eviction
        assert result.evicted_addr == 1 * stride

    def test_capacity_of_one_set(self):
        cache = make_cache(size=4096, ways=4, line=128)
        stride = 8 * 128
        for i in range(4):
            cache.access(i * stride)
        for i in range(4):
            assert cache.access(i * stride).hit
        assert cache.occupancy() == 4


class TestWriteback:
    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache(size=4096, ways=2, line=128)
        stride = 16 * 128
        cache.access(0, is_write=True)
        cache.access(stride)
        result = cache.access(2 * stride)
        assert result.evicted_dirty
        assert result.evicted_addr == 0
        assert cache.stats.dirty_evictions == 1

    def test_write_through_cache_never_marks_dirty(self):
        cache = make_cache(write_back=False)
        cache.access(0, is_write=True)
        lines = dict(cache.resident_lines())
        assert not lines[0].dirty

    def test_flush_reports_lines_and_dirty(self):
        cache = make_cache()
        cache.access(0, is_write=True)
        cache.access(0x80)
        invalidated, dirty = cache.flush()
        assert invalidated == 2
        assert dirty == 1
        assert cache.occupancy() == 0

    def test_no_write_allocate_bypasses_fill(self):
        cache = make_cache(write_allocate=False)
        cache.access(0, is_write=True)
        assert cache.occupancy() == 0


class TestSectored:
    def make(self):
        return make_cache(size=4096, ways=4, line=128, sectored=True,
                          sectors_per_line=4)

    def test_sector_miss_on_present_line(self):
        cache = self.make()
        cache.access(0)          # sector 0 filled
        result = cache.access(32)  # sector 1 of the same line
        assert result.sector_miss
        assert cache.access(32).hit

    def test_sector_miss_counts_as_miss(self):
        cache = self.make()
        cache.access(0)
        cache.access(32)
        assert cache.stats.sector_misses == 1
        assert cache.stats.misses == 2  # cold + sector

    def test_full_line_population(self):
        cache = self.make()
        for sector in range(4):
            cache.access(sector * 32)
        for sector in range(4):
            assert cache.access(sector * 32).hit


class TestPartitioning:
    def test_partition_limits_occupancy(self):
        cache = make_cache(size=4096, ways=4, line=128)
        cache.set_partition({0: 2, 1: 2})
        stride = 8 * 128
        for i in range(4):
            cache.access(i * stride, partition=0)
        occupancy = cache.occupancy_by_partition()
        assert occupancy[0] == 2  # capped at its 2 ways

    def test_partition_way_sum_must_match(self):
        cache = make_cache(ways=4)
        with pytest.raises(ValueError):
            cache.set_partition({0: 1, 1: 1})

    def test_zero_way_partition_raises_on_fill(self):
        cache = make_cache(ways=4)
        cache.set_partition({0: 4, 1: 0})
        with pytest.raises(PartitionFullError):
            cache.access(0, partition=1)

    def test_invalidate_partition(self):
        cache = make_cache(size=4096, ways=4, line=128)
        cache.set_partition({0: 2, 1: 2})
        cache.access(0, partition=0)
        cache.access(0x80, partition=1, is_write=True)
        lines, dirty = cache.invalidate_partition(1)
        assert (lines, dirty) == (1, 1)
        assert cache.probe(0)
        assert not cache.probe(0x80)

    def test_repartitioning_evicts_lazily(self):
        cache = make_cache(size=4096, ways=4, line=128)
        cache.set_partition({0: 2, 1: 2})
        stride = 8 * 128
        cache.access(0, partition=1)
        cache.access(stride, partition=1)
        cache.set_partition({0: 3, 1: 1})
        # Partition 1 is over its new limit; its LRU line goes first.
        cache.access(2 * stride, partition=0)
        cache.access(3 * stride, partition=0)
        cache.access(4 * stride, partition=0)
        occupancy = cache.occupancy_by_partition()
        assert occupancy.get(1, 0) <= 2


class TestInvalidate:
    def test_invalidate_single_line(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.invalidate(0x1000)
        assert cache.access(0x1000).miss

    def test_reset_clears_contents_and_stats(self):
        cache = make_cache()
        cache.access(0)
        cache.reset()
        assert cache.occupancy() == 0
        assert cache.stats.accesses == 0

    def test_resident_lines_roundtrip_addresses(self):
        cache = make_cache(size=4096, ways=4, line=128)
        addrs = [0, 0x80, 0x1000, 0x2480]
        for addr in addrs:
            cache.access(addr)
        resident = {addr for addr, _line in cache.resident_lines()}
        assert resident == {a & ~127 for a in addrs}
