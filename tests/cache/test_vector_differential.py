"""Differential tests: VectorCache vs the OrderedDict reference model.

Random address streams over a matrix of geometries (pow2 and non-pow2
set counts, associativities, write mixes, write-back and write-through)
run through both :class:`SetAssociativeCache` and the vectorized
backend; every per-access outcome (hit/miss, eviction address, eviction
dirty bit), the final ``CacheStats`` and the final resident state
(including LRU order) must be identical.
"""

import numpy as np
import pytest

from repro.arch.config import CacheConfig
from repro.cache.cache import (
    UNPARTITIONED,
    PartitionFullError,
    SetAssociativeCache,
)
from repro.cache.vector import BatchResult, VectorBank, VectorCache

LINE = 128

#: (num_sets, associativity) geometry matrix; 48 and 12 are non-pow2.
GEOMETRIES = [(64, 4), (64, 16), (48, 8), (12, 3), (16, 2), (1, 8)]

WRITE_FRACS = [0.0, 0.3, 1.0]


def make_config(num_sets, assoc, **kwargs):
    return CacheConfig(size_bytes=num_sets * assoc * LINE,
                       associativity=assoc, line_size=LINE, **kwargs)


def random_stream(rng, num_sets, assoc, n, write_frac, base=0):
    """A stream hot enough to hit and crowded enough to evict."""
    footprint = max(2, int(num_sets * assoc * 2.5))
    lines = rng.integers(0, footprint, size=n)
    offsets = rng.integers(0, LINE, size=n)
    addrs = base + lines * LINE + offsets
    writes = rng.random(n) < write_frac
    return addrs.astype(np.int64), writes


def reference_outcomes(cache, addrs, writes, partition=UNPARTITIONED,
                       allocate_on_miss=True):
    """Per-access outcomes from the scalar model, as BatchResult arrays."""
    n = len(addrs)
    hits = np.zeros(n, dtype=bool)
    ev_addr = np.full(n, -1, dtype=np.int64)
    ev_dirty = np.zeros(n, dtype=bool)
    for i in range(n):
        try:
            result = cache.access(int(addrs[i]), bool(writes[i]),
                                  partition=partition,
                                  allocate_on_miss=allocate_on_miss)
        except PartitionFullError:
            continue
        hits[i] = result.hit
        if result.evicted_addr is not None:
            ev_addr[i] = result.evicted_addr
            ev_dirty[i] = result.evicted_dirty
    return BatchResult(hits, ev_addr, ev_dirty)


def final_state(cache):
    """Resident lines as (addr, tag, dirty) in set-order, LRU -> MRU."""
    return [(addr, line.tag, line.dirty)
            for addr, line in cache.resident_lines()]


def assert_identical(ref_out, vec_out, ref_cache, vec_cache):
    np.testing.assert_array_equal(ref_out.hits, vec_out.hits)
    np.testing.assert_array_equal(ref_out.evicted_addr, vec_out.evicted_addr)
    np.testing.assert_array_equal(ref_out.evicted_dirty,
                                  vec_out.evicted_dirty)
    assert ref_cache.stats == vec_cache.stats
    assert final_state(ref_cache) == final_state(vec_cache)


@pytest.mark.parametrize("num_sets,assoc", GEOMETRIES)
@pytest.mark.parametrize("write_frac", WRITE_FRACS)
def test_vector_matches_reference(num_sets, assoc, write_frac):
    rng = np.random.default_rng(num_sets * 1000 + assoc * 10
                                + int(write_frac * 10))
    config = make_config(num_sets, assoc)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    # Several batches so later ones start from warm pre-batch state.
    for n in (257, 64, 1, 503, 1024):
        addrs, writes = random_stream(rng, num_sets, assoc, n, write_frac)
        ref_out = reference_outcomes(ref, addrs, writes)
        vec_out = vec.access_many(addrs, writes)
        assert_identical(ref_out, vec_out, ref, vec)


def test_vector_matches_reference_write_through():
    rng = np.random.default_rng(7)
    config = make_config(48, 8, write_back=False)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    for n in (300, 300):
        addrs, writes = random_stream(rng, 48, 8, n, 0.5)
        assert_identical(reference_outcomes(ref, addrs, writes),
                         vec.access_many(addrs, writes), ref, vec)


def test_single_set_chunked_groups():
    """One set forces every access into one group -> rank-chunked path."""
    rng = np.random.default_rng(11)
    config = make_config(1, 8)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 1, 8, 700, 0.4)
    assert_identical(reference_outcomes(ref, addrs, writes),
                     vec.access_many(addrs, writes), ref, vec)


def test_huge_tags_use_lexsort_path():
    """Tags above the composite-key range still resolve identically."""
    rng = np.random.default_rng(13)
    config = make_config(64, 4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 64, 4, 400, 0.3, base=1 << 58)
    assert_identical(reference_outcomes(ref, addrs, writes),
                     vec.access_many(addrs, writes), ref, vec)


def test_scalar_interludes_promote_and_demote():
    """Scalar calls demote to the delegate; batches promote back."""
    rng = np.random.default_rng(17)
    config = make_config(16, 4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    for round_ in range(4):
        addrs, writes = random_stream(rng, 16, 4, 200, 0.3)
        assert_identical(reference_outcomes(ref, addrs, writes),
                         vec.access_many(addrs, writes), ref, vec)
        # Scalar interlude (forces a demotion mid-stream).
        addrs, writes = random_stream(rng, 16, 4, 50, 0.3)
        for i in range(len(addrs)):
            ref_r = ref.access(int(addrs[i]), bool(writes[i]))
            vec_r = vec.access(int(addrs[i]), bool(writes[i]))
            assert ref_r.hit == vec_r.hit
            assert ref_r.evicted_addr == vec_r.evicted_addr
            assert ref_r.evicted_dirty == vec_r.evicted_dirty
        assert vec._delegate is not None
        assert ref.stats == vec.stats
    assert vec._batch_ready()
    assert vec._delegate is None
    assert final_state(ref) == final_state(vec)


def test_partitioned_cache_falls_back_to_scalar():
    """Partitioned configs take the delegate path inside access_many."""
    rng = np.random.default_rng(19)
    config = make_config(16, 4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    ways = {0: 2, 1: 2}
    ref.set_partition(ways)
    vec.set_partition(ways)
    for partition in (0, 1, 0):
        addrs, writes = random_stream(rng, 16, 4, 150, 0.4)
        ref_out = reference_outcomes(ref, addrs, writes, partition=partition)
        vec_out = vec.access_many(addrs, writes, partition=partition)
        np.testing.assert_array_equal(ref_out.hits, vec_out.hits)
        np.testing.assert_array_equal(ref_out.evicted_addr,
                                      vec_out.evicted_addr)
        assert ref.stats == vec.stats
    # Unpartitioning alone is not enough to promote: resident lines still
    # carry partition ids, so the batch path must keep the delegate.
    ref.set_partition(None)
    vec.set_partition(None)
    addrs, writes = random_stream(rng, 16, 4, 150, 0.4)
    assert_identical(reference_outcomes(ref, addrs, writes),
                     vec.access_many(addrs, writes), ref, vec)


def test_zero_way_partition_records_miss_without_eviction():
    config = make_config(8, 2)
    vec = VectorCache(config, "vec")
    vec.set_partition({0: 2, 7: 0})
    out = vec.access_many(np.arange(4, dtype=np.int64) * LINE,
                          np.zeros(4, dtype=bool), partition=7)
    assert not out.hits.any()
    assert (out.evicted_addr == -1).all()
    assert vec.stats.accesses == 4
    assert vec.stats.fills == 0


def test_bank_grouped_matches_per_cache_reference():
    """One grouped kernel call over many slices == per-slice serial runs."""
    rng = np.random.default_rng(23)
    num_caches = 6
    config = make_config(48, 8)
    bank = VectorBank(config, [f"slice{i}" for i in range(num_caches)])
    refs = [SetAssociativeCache(config, f"ref{i}")
            for i in range(num_caches)]
    for _ in range(3):
        n = 1500
        addrs, writes = random_stream(rng, 48, 8, n, 0.3)
        cache_idx = rng.integers(0, num_caches, size=n).astype(np.int64)
        out = bank.access_many_grouped(cache_idx, addrs, writes)
        assert out is not None
        for i in range(num_caches):
            sel = cache_idx == i
            ref_out = reference_outcomes(refs[i], addrs[sel], writes[sel])
            np.testing.assert_array_equal(ref_out.hits, out.hits[sel])
            np.testing.assert_array_equal(ref_out.evicted_addr,
                                          out.evicted_addr[sel])
            np.testing.assert_array_equal(ref_out.evicted_dirty,
                                          out.evicted_dirty[sel])
            assert refs[i].stats == bank.caches[i].stats
            assert final_state(refs[i]) == final_state(bank.caches[i])


def test_bank_grouped_declines_when_partitioned():
    config = make_config(16, 4)
    bank = VectorBank(config, ["a", "b"])
    bank.caches[1].set_partition({0: 2, 1: 2})
    cache_idx = np.zeros(4, dtype=np.int64)
    addrs = np.arange(4, dtype=np.int64) * LINE
    assert bank.access_many_grouped(cache_idx, addrs,
                                    np.zeros(4, dtype=bool)) is None


def test_flush_invalidate_probe_native_paths():
    rng = np.random.default_rng(29)
    config = make_config(12, 3)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 12, 3, 200, 0.5)
    reference_outcomes(ref, addrs, writes)
    vec.access_many(addrs, writes)
    for addr in addrs[:40]:
        assert ref.probe(int(addr)) == vec.probe(int(addr))
    assert ref.occupancy() == vec.occupancy()
    for addr in addrs[:20]:
        assert ref.invalidate(int(addr)) == vec.invalidate(int(addr))
    assert final_state(ref) == final_state(vec)
    ref_addrs = sorted(a for a, _t, _d in final_state(vec))
    got = vec.resident_addrs()
    assert got is not None
    assert sorted(got.tolist()) == ref_addrs
    assert ref.flush() == vec.flush()
    assert ref.occupancy() == vec.occupancy() == 0


def test_vector_cache_rejects_unsupported_configs():
    with pytest.raises(ValueError):
        VectorCache(make_config(16, 4, sectored=True))
    with pytest.raises(ValueError):
        VectorCache(make_config(16, 4, replacement="srrip"))


def test_no_write_allocate_uses_scalar_path():
    rng = np.random.default_rng(31)
    config = make_config(16, 4, write_allocate=False)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 16, 4, 300, 0.6)
    assert_identical(reference_outcomes(ref, addrs, writes),
                     vec.access_many(addrs, writes), ref, vec)
