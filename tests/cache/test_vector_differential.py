"""Differential tests: VectorCache vs the OrderedDict reference model.

Random address streams over a matrix of geometries (pow2 and non-pow2
set counts, associativities, write mixes, write-back and write-through)
run through both :class:`SetAssociativeCache` and the vectorized
backend; every per-access outcome (hit/miss, eviction address, eviction
dirty bit), the final ``CacheStats`` and the final resident state
(including LRU order) must be identical.
"""

import numpy as np
import pytest

from repro.arch.config import CacheConfig
from repro.cache.cache import (
    UNPARTITIONED,
    PartitionFullError,
    SetAssociativeCache,
)
from repro.cache.vector import (
    BatchResult,
    GroupedLaneCall,
    StagedLaneCall,
    VectorBank,
    VectorCache,
)

LINE = 128

#: (num_sets, associativity) geometry matrix; 48 and 12 are non-pow2.
GEOMETRIES = [(64, 4), (64, 16), (48, 8), (12, 3), (16, 2), (1, 8)]

WRITE_FRACS = [0.0, 0.3, 1.0]


def make_config(num_sets, assoc, **kwargs):
    return CacheConfig(size_bytes=num_sets * assoc * LINE,
                       associativity=assoc, line_size=LINE, **kwargs)


def random_stream(rng, num_sets, assoc, n, write_frac, base=0):
    """A stream hot enough to hit and crowded enough to evict."""
    footprint = max(2, int(num_sets * assoc * 2.5))
    lines = rng.integers(0, footprint, size=n)
    offsets = rng.integers(0, LINE, size=n)
    addrs = base + lines * LINE + offsets
    writes = rng.random(n) < write_frac
    return addrs.astype(np.int64), writes


def reference_outcomes(cache, addrs, writes, partition=UNPARTITIONED,
                       allocate_on_miss=True):
    """Per-access outcomes from the scalar model, as BatchResult arrays."""
    n = len(addrs)
    hits = np.zeros(n, dtype=bool)
    ev_addr = np.full(n, -1, dtype=np.int64)
    ev_dirty = np.zeros(n, dtype=bool)
    sector_miss = np.zeros(n, dtype=bool)
    for i in range(n):
        try:
            result = cache.access(int(addrs[i]), bool(writes[i]),
                                  partition=partition,
                                  allocate_on_miss=allocate_on_miss)
        except PartitionFullError:
            continue
        hits[i] = result.hit
        sector_miss[i] = result.sector_miss
        if result.evicted_addr is not None:
            ev_addr[i] = result.evicted_addr
            ev_dirty[i] = result.evicted_dirty
    return BatchResult(hits, ev_addr, ev_dirty, sector_miss)


def final_state(cache):
    """Resident lines in set-order, LRU -> MRU, with every line field."""
    return [(addr, line.tag, line.dirty, line.partition, line.sector_valid)
            for addr, line in cache.resident_lines()]


def assert_identical(ref_out, vec_out, ref_cache, vec_cache):
    np.testing.assert_array_equal(ref_out.hits, vec_out.hits)
    np.testing.assert_array_equal(ref_out.evicted_addr, vec_out.evicted_addr)
    np.testing.assert_array_equal(ref_out.evicted_dirty,
                                  vec_out.evicted_dirty)
    if vec_out.sector_miss is not None:
        np.testing.assert_array_equal(ref_out.sector_miss,
                                      vec_out.sector_miss)
    assert ref_cache.stats == vec_cache.stats
    assert final_state(ref_cache) == final_state(vec_cache)


@pytest.mark.parametrize("num_sets,assoc", GEOMETRIES)
@pytest.mark.parametrize("write_frac", WRITE_FRACS)
def test_vector_matches_reference(num_sets, assoc, write_frac):
    rng = np.random.default_rng(num_sets * 1000 + assoc * 10
                                + int(write_frac * 10))
    config = make_config(num_sets, assoc)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    # Several batches so later ones start from warm pre-batch state.
    for n in (257, 64, 1, 503, 1024):
        addrs, writes = random_stream(rng, num_sets, assoc, n, write_frac)
        ref_out = reference_outcomes(ref, addrs, writes)
        vec_out = vec.access_many(addrs, writes)
        assert_identical(ref_out, vec_out, ref, vec)


def test_vector_matches_reference_write_through():
    rng = np.random.default_rng(7)
    config = make_config(48, 8, write_back=False)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    for n in (300, 300):
        addrs, writes = random_stream(rng, 48, 8, n, 0.5)
        assert_identical(reference_outcomes(ref, addrs, writes),
                         vec.access_many(addrs, writes), ref, vec)


def test_single_set_chunked_groups():
    """One set forces every access into one group -> rank-chunked path."""
    rng = np.random.default_rng(11)
    config = make_config(1, 8)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 1, 8, 700, 0.4)
    assert_identical(reference_outcomes(ref, addrs, writes),
                     vec.access_many(addrs, writes), ref, vec)


def test_huge_tags_use_lexsort_path():
    """Tags above the composite-key range still resolve identically."""
    rng = np.random.default_rng(13)
    config = make_config(64, 4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 64, 4, 400, 0.3, base=1 << 58)
    assert_identical(reference_outcomes(ref, addrs, writes),
                     vec.access_many(addrs, writes), ref, vec)


def test_scalar_interludes_stay_bit_identical():
    """Interleaved scalar accesses and batches share the same SoA state."""
    rng = np.random.default_rng(17)
    config = make_config(16, 4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    for round_ in range(4):
        addrs, writes = random_stream(rng, 16, 4, 200, 0.3)
        assert_identical(reference_outcomes(ref, addrs, writes),
                         vec.access_many(addrs, writes), ref, vec)
        # Scalar interlude mid-stream.
        addrs, writes = random_stream(rng, 16, 4, 50, 0.3)
        for i in range(len(addrs)):
            ref_r = ref.access(int(addrs[i]), bool(writes[i]))
            vec_r = vec.access(int(addrs[i]), bool(writes[i]))
            assert ref_r.hit == vec_r.hit
            assert ref_r.evicted_addr == vec_r.evicted_addr
            assert ref_r.evicted_dirty == vec_r.evicted_dirty
        assert ref.stats == vec.stats
    assert final_state(ref) == final_state(vec)


def test_partitioned_batches_match_reference():
    """Way-partitioned batches resolve natively, including repartition
    mid-stream and a final ``set_partition(None)`` round."""
    rng = np.random.default_rng(19)
    config = make_config(16, 4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    for ways in ({0: 2, 1: 2}, {0: 1, 1: 3}, {0: 3, 1: 1}):
        ref.set_partition(ways)
        vec.set_partition(ways)
        assert vec.partition_ways == ref.partition_ways == ways
        for partition in (0, 1, 0):
            addrs, writes = random_stream(rng, 16, 4, 150, 0.4)
            assert_identical(
                reference_outcomes(ref, addrs, writes, partition=partition),
                vec.access_many(addrs, writes, partition=partition),
                ref, vec)
    # Unpartitioning: resident lines keep their partition ids, and the
    # batch path must keep honouring them until those lines drain.
    ref.set_partition(None)
    vec.set_partition(None)
    for _ in range(3):
        addrs, writes = random_stream(rng, 16, 4, 150, 0.4)
        assert_identical(reference_outcomes(ref, addrs, writes),
                         vec.access_many(addrs, writes), ref, vec)


def test_partitioned_batch_scalar_interleaved():
    """Batches, scalar accesses and fills agree under partitioning."""
    rng = np.random.default_rng(37)
    config = make_config(12, 3)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    ref.set_partition({0: 2, 1: 1})
    vec.set_partition({0: 2, 1: 1})
    for round_ in range(3):
        for partition in (0, 1):
            addrs, writes = random_stream(rng, 12, 3, 120, 0.4)
            assert_identical(
                reference_outcomes(ref, addrs, writes, partition=partition),
                vec.access_many(addrs, writes, partition=partition),
                ref, vec)
        addrs, writes = random_stream(rng, 12, 3, 40, 0.4)
        for i in range(len(addrs)):
            part = int(addrs[i]) % 2
            ref_r = ref.access(int(addrs[i]), bool(writes[i]),
                               partition=part)
            vec_r = vec.access(int(addrs[i]), bool(writes[i]),
                               partition=part)
            assert (ref_r.hit, ref_r.evicted_addr, ref_r.evicted_dirty) == \
                (vec_r.hit, vec_r.evicted_addr, vec_r.evicted_dirty)
        assert ref.stats == vec.stats
    assert final_state(ref) == final_state(vec)


def test_partition_full_batches_match_reference():
    """Zero-way partitions: every access is a PFE-miss in both models."""
    rng = np.random.default_rng(41)
    config = make_config(16, 4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    ways = {0: 3, 1: 1, 2: 0}
    ref.set_partition(ways)
    vec.set_partition(ways)
    for partition in (0, 2, 1, 2):
        addrs, writes = random_stream(rng, 16, 4, 100, 0.4)
        assert_identical(
            reference_outcomes(ref, addrs, writes, partition=partition),
            vec.access_many(addrs, writes, partition=partition),
            ref, vec)
    # A partition id absent from the map also raises in both models.
    with pytest.raises(PartitionFullError):
        ref.access(9_999 * LINE, False, partition=5)
    with pytest.raises(PartitionFullError):
        vec.access(9_999 * LINE, False, partition=5)
    assert ref.stats == vec.stats


def test_zero_way_partition_records_miss_without_eviction():
    config = make_config(8, 2)
    vec = VectorCache(config, "vec")
    vec.set_partition({0: 2, 7: 0})
    out = vec.access_many(np.arange(4, dtype=np.int64) * LINE,
                          np.zeros(4, dtype=bool), partition=7)
    assert not out.hits.any()
    assert (out.evicted_addr == -1).all()
    assert vec.stats.accesses == 4
    assert vec.stats.fills == 0


@pytest.mark.parametrize("sectored", [False, True])
def test_bank_grouped_matches_per_cache_reference(sectored):
    """One grouped kernel call over many slices == per-slice serial runs."""
    rng = np.random.default_rng(23)
    num_caches = 6
    config = make_config(48, 8, sectored=sectored)
    bank = VectorBank(config, [f"slice{i}" for i in range(num_caches)])
    refs = [SetAssociativeCache(config, f"ref{i}")
            for i in range(num_caches)]
    for _ in range(3):
        n = 1500
        addrs, writes = random_stream(rng, 48, 8, n, 0.3)
        cache_idx = rng.integers(0, num_caches, size=n).astype(np.int64)
        out = bank.access_many_grouped(cache_idx, addrs, writes)
        assert out is not None
        for i in range(num_caches):
            sel = cache_idx == i
            ref_out = reference_outcomes(refs[i], addrs[sel], writes[sel])
            np.testing.assert_array_equal(ref_out.hits, out.hits[sel])
            np.testing.assert_array_equal(ref_out.evicted_addr,
                                          out.evicted_addr[sel])
            np.testing.assert_array_equal(ref_out.evicted_dirty,
                                          out.evicted_dirty[sel])
            assert refs[i].stats == bank.caches[i].stats
            assert final_state(refs[i]) == final_state(bank.caches[i])


def test_bank_grouped_declines_when_partitioned():
    config = make_config(16, 4)
    bank = VectorBank(config, ["a", "b"])
    bank.caches[1].set_partition({0: 2, 1: 2})
    cache_idx = np.zeros(4, dtype=np.int64)
    addrs = np.arange(4, dtype=np.int64) * LINE
    assert bank.access_many_grouped(cache_idx, addrs,
                                    np.zeros(4, dtype=bool)) is None


def test_flush_invalidate_probe_native_paths():
    rng = np.random.default_rng(29)
    config = make_config(12, 3)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 12, 3, 200, 0.5)
    reference_outcomes(ref, addrs, writes)
    vec.access_many(addrs, writes)
    for addr in addrs[:40]:
        assert ref.probe(int(addr)) == vec.probe(int(addr))
    assert ref.occupancy() == vec.occupancy()
    for addr in addrs[:20]:
        assert ref.invalidate(int(addr)) == vec.invalidate(int(addr))
    assert final_state(ref) == final_state(vec)
    ref_addrs = sorted(entry[0] for entry in final_state(vec))
    got = vec.resident_addrs()
    assert got is not None
    assert sorted(got.tolist()) == ref_addrs
    assert ref.flush() == vec.flush()
    assert ref.occupancy() == vec.occupancy() == 0


@pytest.mark.parametrize("num_sets,assoc", [(64, 4), (48, 8), (12, 3)])
@pytest.mark.parametrize("write_frac", [0.0, 0.4])
def test_sectored_batches_match_reference(num_sets, assoc, write_frac):
    """Sector caches: tag-hit/sector-miss verdicts must be bit-identical,
    including the ``sector_misses`` counter and final sector bitmasks."""
    rng = np.random.default_rng(num_sets * 100 + assoc + int(write_frac * 10))
    config = make_config(num_sets, assoc, sectored=True, sectors_per_line=4)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    for n in (257, 64, 503):
        addrs, writes = random_stream(rng, num_sets, assoc, n, write_frac)
        ref_out = reference_outcomes(ref, addrs, writes)
        vec_out = vec.access_many(addrs, writes)
        assert vec_out.sector_miss is not None
        assert_identical(ref_out, vec_out, ref, vec)
    assert ref.stats.sector_misses == vec.stats.sector_misses
    assert ref.stats.sector_misses > 0  # the stream must exercise them


def test_sector_miss_on_tag_hit():
    """Touching a new sector of a resident line: tag hit, sector miss."""
    config = make_config(4, 2, sectored=True, sectors_per_line=4)
    sector = config.sector_size
    for cache in (SetAssociativeCache(config, "ref"),
                  VectorCache(config, "vec")):
        first = cache.access(0, False)
        assert not first.hit and not first.sector_miss
        again = cache.access(0, True)
        assert again.hit and not again.sector_miss
        other = cache.access(2 * sector, False)
        assert not other.hit and other.sector_miss
        assert cache.stats.sector_misses == 1
        assert cache.stats.fills == 1  # sector miss does not refill
    # And the same sequence through the batch path.
    vec = VectorCache(config, "vec2")
    out = vec.access_many(np.array([0, 0, 2 * sector], dtype=np.int64),
                          np.array([False, True, False]))
    assert out.sector_miss is not None
    np.testing.assert_array_equal(out.hits, [False, True, False])
    np.testing.assert_array_equal(out.sector_miss, [False, False, True])
    assert vec.stats.sector_misses == 1 and vec.stats.fills == 1


def test_sectored_partitioned_with_scalar_interludes():
    """The full matrix point: sectored + partitioned + interleaving."""
    rng = np.random.default_rng(43)
    config = make_config(16, 4, sectored=True, sectors_per_line=2)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    ref.set_partition({0: 3, 1: 1})
    vec.set_partition({0: 3, 1: 1})
    for round_ in range(3):
        for partition in (0, 1):
            addrs, writes = random_stream(rng, 16, 4, 150, 0.3)
            assert_identical(
                reference_outcomes(ref, addrs, writes, partition=partition),
                vec.access_many(addrs, writes, partition=partition),
                ref, vec)
        addrs, writes = random_stream(rng, 16, 4, 30, 0.3)
        for i in range(len(addrs)):
            ref_r = ref.access(int(addrs[i]), bool(writes[i]), partition=1)
            vec_r = vec.access(int(addrs[i]), bool(writes[i]), partition=1)
            assert (ref_r.hit, ref_r.sector_miss, ref_r.evicted_addr) == \
                (vec_r.hit, vec_r.sector_miss, vec_r.evicted_addr)
    assert ref.stats == vec.stats
    assert final_state(ref) == final_state(vec)


def test_scalar_fallback_counts_partition_full_misses():
    """Regression: `_access_many_scalar` must count PartitionFullError
    accesses as misses without fills, exactly like the scalar model."""
    config = make_config(8, 2, write_allocate=False)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    ref.set_partition({0: 2, 1: 0})
    vec.set_partition({0: 2, 1: 0})
    addrs = np.arange(6, dtype=np.int64) * LINE
    writes = np.zeros(6, dtype=bool)
    # write_allocate=False routes access_many through the scalar fallback;
    # reads to the zero-way partition raise PartitionFullError inside it.
    ref_out = reference_outcomes(ref, addrs, writes, partition=1)
    vec_out = vec.access_many(addrs, writes, partition=1)
    np.testing.assert_array_equal(ref_out.hits, vec_out.hits)
    np.testing.assert_array_equal(ref_out.evicted_addr, vec_out.evicted_addr)
    assert not vec_out.hits.any()
    assert ref.stats == vec.stats
    assert vec.stats.accesses == 6
    assert vec.stats.misses == 6
    assert vec.stats.fills == 0


def test_vector_cache_rejects_unsupported_configs():
    # Sectored configs are natively supported now; only non-LRU
    # replacement still refuses to construct.
    VectorCache(make_config(16, 4, sectored=True))
    with pytest.raises(ValueError):
        VectorCache(make_config(16, 4, replacement="srrip"))


def _staged_reference(refs, addrs, writes, idx0, part0, two_stage, idx1,
                      part1):
    """Emulate the engine's two-stage probe loop on scalar caches."""
    n = len(addrs)
    hs = np.full(n, -1, dtype=np.int64)
    ev_cache0, ev_addr0, ev_cache1, ev_addr1 = [], [], [], []
    for i in range(n):
        addr, write = int(addrs[i]), bool(writes[i])
        try:
            r0 = refs[idx0[i]].access(addr, write, partition=int(part0[i]))
        except PartitionFullError:
            r0 = None
        if r0 is not None:
            if r0.hit:
                hs[i] = 0
            if r0.evicted_addr is not None and r0.evicted_dirty:
                ev_cache0.append(int(idx0[i]))
                ev_addr0.append(r0.evicted_addr)
        if two_stage[i] and (r0 is None or not r0.hit):
            try:
                r1 = refs[idx1[i]].access(addr, write,
                                          partition=int(part1[i]))
            except PartitionFullError:
                continue
            if r1.hit:
                hs[i] = 1
            if r1.evicted_addr is not None and r1.evicted_dirty:
                ev_cache1.append(int(idx1[i]))
                ev_addr1.append(r1.evicted_addr)
    return (hs, np.array(ev_cache0 + ev_cache1, dtype=np.int64),
            np.array(ev_addr0 + ev_addr1, dtype=np.int64))


@pytest.mark.parametrize("sectored", [False, True])
def test_bank_staged_matches_probe_loop(sectored):
    """The three-phase staged solver == the scalar two-stage probe loop,
    across repartitions (over-allotment replay) and a zero-way epoch."""
    rng = np.random.default_rng(47)
    num_caches = 4
    num_sets = 16
    config = make_config(num_sets, 4, sectored=sectored)
    bank = VectorBank(config, [f"s{i}" for i in range(num_caches)])
    refs = [SetAssociativeCache(config, f"r{i}")
            for i in range(num_caches)]
    for ways in ({0: 3, 1: 1}, {0: 1, 1: 3}, {0: 4, 1: 0}):
        for cache in bank.caches:
            cache.set_partition(dict(ways))
        for ref in refs:
            ref.set_partition(dict(ways))
        for _ in range(2):
            n = 600
            addrs, writes = random_stream(rng, num_sets, 4, n, 0.4,
                                          base=0)
            # Static-LLC shape: home slice from the address, requester
            # random; local accesses take one stage in partition 0,
            # remote ones probe requester/partition-1 then
            # home/partition-0.
            home = ((addrs // LINE) % num_caches).astype(np.int64)
            req = rng.integers(0, num_caches, size=n).astype(np.int64)
            two_stage = req != home
            idx0 = np.where(two_stage, req, home)
            part0 = np.where(two_stage, 1, 0).astype(np.int64)
            idx1 = home
            part1 = np.zeros(n, dtype=np.int64)
            out = bank.access_many_staged(addrs, writes, idx0, part0,
                                          two_stage, idx1, part1)
            assert out is not None
            hs, ev_cache, ev_addr = _staged_reference(
                refs, addrs, writes, idx0, part0, two_stage, idx1, part1)
            np.testing.assert_array_equal(out.hit_stage, hs)
            np.testing.assert_array_equal(out.evicted_cache, ev_cache)
            np.testing.assert_array_equal(out.evicted_addr, ev_addr)
            for ref, cache in zip(refs, bank.caches):
                assert ref.stats == cache.stats
                assert final_state(ref) == final_state(cache)


def test_no_write_allocate_uses_scalar_path():
    rng = np.random.default_rng(31)
    config = make_config(16, 4, write_allocate=False)
    ref = SetAssociativeCache(config, "ref")
    vec = VectorCache(config, "vec")
    addrs, writes = random_stream(rng, 16, 4, 300, 0.6)
    assert_identical(reference_outcomes(ref, addrs, writes),
                     vec.access_many(addrs, writes), ref, vec)


# -- Shared reuse encodings (stacked lanes over one stream) -------------------


def _stacked_bank(config, num_lanes, slices_per_lane):
    names = [f"l{i}.s{s}" for i in range(num_lanes)
             for s in range(slices_per_lane)]
    return VectorBank(config, names)


@pytest.mark.parametrize("sectored", [False, True])
def test_grouped_shared_one_encoding_per_stream(sectored):
    """Lanes sharing a stream solve once and replay per lane, and each
    lane's verdicts/state equal its own per-lane grouped call."""
    rng = np.random.default_rng(61)
    num_lanes, spl = 3, 4
    config = make_config(48, 8, sectored=sectored)
    bank = _stacked_bank(config, num_lanes, spl)
    solo = [VectorBank(config, [f"r{i}.s{s}" for s in range(spl)])
            for i in range(num_lanes)]
    for _ in range(3):
        n = 1200
        addrs, writes = random_stream(rng, 48, 8, n, 0.3)
        cache_idx = rng.integers(0, spl, size=n).astype(np.int64)
        calls = [GroupedLaneCall((i * spl, (i + 1) * spl), cache_idx,
                                 addrs, writes, stream=0)
                 for i in range(num_lanes)]
        enc0 = bank.shared_encodings
        outs = bank.access_many_grouped_shared(calls)
        assert bank.shared_encodings == enc0 + 1
        for i, out in enumerate(outs):
            assert out is not None
            ref_out = solo[i].access_many_grouped(cache_idx, addrs, writes)
            np.testing.assert_array_equal(ref_out.hits, out.hits)
            np.testing.assert_array_equal(ref_out.evicted_addr,
                                          out.evicted_addr)
            np.testing.assert_array_equal(ref_out.evicted_dirty,
                                          out.evicted_dirty)
    for i in range(num_lanes):
        for s in range(spl):
            assert final_state(solo[i].caches[s]) == \
                final_state(bank.caches[i * spl + s])
    assert bank.shared_replays > bank.shared_encodings


def test_grouped_shared_distinct_streams_stay_isolated():
    """Different stream ids produce independent encodings: a lane fed a
    different trace must not inherit another stream's verdicts."""
    rng = np.random.default_rng(67)
    spl = 2
    config = make_config(16, 4)
    bank = _stacked_bank(config, 2, spl)
    solo = [VectorBank(config, [f"r{i}.s{s}" for s in range(spl)])
            for i in range(2)]
    a0, w0 = random_stream(rng, 16, 4, 400, 0.4)
    a1, w1 = random_stream(rng, 16, 4, 400, 0.4, base=1 << 20)
    ci = rng.integers(0, spl, size=400).astype(np.int64)
    calls = [GroupedLaneCall((0, spl), ci, a0, w0, stream=0),
             GroupedLaneCall((spl, 2 * spl), ci, a1, w1, stream=1)]
    outs = bank.access_many_grouped_shared(calls)
    for i, (addrs, writes) in enumerate(((a0, w0), (a1, w1))):
        ref_out = solo[i].access_many_grouped(ci, addrs, writes)
        out = outs[i]
        assert out is not None
        np.testing.assert_array_equal(ref_out.hits, out.hits)
        for s in range(spl):
            assert final_state(solo[i].caches[s]) == \
                final_state(bank.caches[i * spl + s])


def test_staged_shared_mixed_partition_caps_over_one_stream():
    """One stream, per-lane way splits: the shared encoding is replayed
    with each lane's capacity vector and stays bit-identical to the
    per-lane staged path (which is itself pinned to the probe loop)."""
    rng = np.random.default_rng(71)
    num_lanes, spl, num_sets = 3, 4, 16
    config = make_config(num_sets, 4)
    bank = _stacked_bank(config, num_lanes, spl)
    solo = [VectorBank(config, [f"r{i}.s{s}" for s in range(spl)])
            for i in range(num_lanes)]
    splits = ({0: 3, 1: 1}, {0: 1, 1: 3}, {0: 2, 1: 2})
    for i, ways in enumerate(splits):
        for s in range(spl):
            bank.caches[i * spl + s].set_partition(dict(ways))
            solo[i].caches[s].set_partition(dict(ways))
    for _ in range(3):
        n = 600
        addrs, writes = random_stream(rng, num_sets, 4, n, 0.4)
        home = ((addrs // LINE) % spl).astype(np.int64)
        req = rng.integers(0, spl, size=n).astype(np.int64)
        two_stage = req != home
        idx0 = np.where(two_stage, req, home)
        part0 = np.where(two_stage, 1, 0).astype(np.int64)
        idx1 = home
        part1 = np.zeros(n, dtype=np.int64)
        calls = [StagedLaneCall((i * spl, (i + 1) * spl), addrs, writes,
                                idx0, part0, two_stage, idx1, part1,
                                stream=0)
                 for i in range(num_lanes)]
        enc0 = bank.shared_encodings
        outs = bank.access_many_staged_shared(calls)
        assert bank.shared_encodings == enc0 + 1
        for i, out in enumerate(outs):
            assert out is not None
            ref = solo[i].access_many_staged(addrs, writes, idx0, part0,
                                             two_stage, idx1, part1)
            assert ref is not None
            np.testing.assert_array_equal(ref.hit_stage, out.hit_stage)
            # Shared staged results carry bank-absolute cache indices;
            # the driver localizes them per lane (BankProbe.localize).
            np.testing.assert_array_equal(ref.evicted_cache,
                                          out.evicted_cache - i * spl)
            np.testing.assert_array_equal(ref.evicted_addr, out.evicted_addr)
    for i in range(num_lanes):
        for s in range(spl):
            assert final_state(solo[i].caches[s]) == \
                final_state(bank.caches[i * spl + s])
    assert bank.shared_replays > bank.shared_encodings


def test_staged_shared_unpartitioned_lane_falls_back_alone():
    """A lane failing the all-partitioned gate comes back None while the
    remaining lanes still share the stream's encoding."""
    rng = np.random.default_rng(73)
    spl, num_sets = 2, 16
    config = make_config(num_sets, 4)
    bank = _stacked_bank(config, 3, spl)
    for i in (0, 1):
        for s in range(spl):
            bank.caches[i * spl + s].set_partition({0: 2, 1: 2})
    # Lane 2 left unpartitioned: its staged call cannot be hosted.
    n = 300
    addrs, writes = random_stream(rng, num_sets, 4, n, 0.4)
    home = ((addrs // LINE) % spl).astype(np.int64)
    req = rng.integers(0, spl, size=n).astype(np.int64)
    two_stage = req != home
    idx0 = np.where(two_stage, req, home)
    part0 = np.where(two_stage, 1, 0).astype(np.int64)
    part1 = np.zeros(n, dtype=np.int64)
    calls = [StagedLaneCall((i * spl, (i + 1) * spl), addrs, writes,
                            idx0, part0, two_stage, home, part1, stream=0)
             for i in range(3)]
    outs = bank.access_many_staged_shared(calls)
    assert outs[0] is not None and outs[1] is not None
    assert outs[2] is None
    assert bank.shared_encodings >= 1
