"""The environment-flag registry and its generated README table."""

import re
from pathlib import Path

import pytest

from repro.core import flags

README = Path(__file__).resolve().parents[2] / "README.md"

_TABLE_RE = re.compile(
    r"<!-- env-flags:begin[^>]*-->\n(.*?)\n<!-- env-flags:end -->",
    re.DOTALL)


class TestRegistry:
    def test_names_are_prefixed_sorted_and_unique(self):
        names = flags.declared_names()
        assert len(set(names)) == len(names)
        assert list(names) == sorted(names)
        assert all(name.startswith("REPRO_") for name in names)

    def test_every_flag_has_a_description(self):
        assert all(flag.description.strip() for flag in flags.FLAGS)

    def test_bad_declarations_are_rejected(self):
        with pytest.raises(ValueError):
            flags.EnvFlag("NOT_PREFIXED", "", "whatever")
        with pytest.raises(ValueError):
            flags.EnvFlag("REPRO_NO_DESC", "", "   ")

    def test_read_applies_the_declared_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert flags.read("REPRO_RETRIES") == "1"
        monkeypatch.setenv("REPRO_RETRIES", "7")
        assert flags.read("REPRO_RETRIES") == "7"

    def test_read_rejects_undeclared_names(self):
        with pytest.raises(KeyError):
            flags.read("REPRO_TYPO")

    def test_declared_lookup(self):
        assert flags.declared("REPRO_SANITIZE").name == "REPRO_SANITIZE"
        with pytest.raises(KeyError):
            flags.declared("REPRO_TYPO")


class TestReadmeTable:
    def test_readme_table_matches_the_registry(self):
        match = _TABLE_RE.search(README.read_text(encoding="utf-8"))
        assert match, "README.md lost its env-flags markers"
        assert match.group(1) == flags.markdown_table(), (
            "README env-flag table is stale — regenerate it with "
            "`python -m repro.core.flags` and paste between the "
            "env-flags markers")

    def test_table_lists_every_flag_once(self):
        table = flags.markdown_table()
        for name in flags.declared_names():
            assert table.count(f"| `{name}` |") == 1
