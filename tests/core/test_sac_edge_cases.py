"""Edge-case tests for the SAC controller and base organization hooks."""

import pytest

from repro.arch import baseline
from repro.core import SharingAwareCaching
from repro.core.crd import modular_set_index
from repro.llc import MemorySideLLC
from repro.llc.base import LLCOrganization, LookupStage, RoutePlan
from repro.sim.run import scaled_config


class TestSACErrorPaths:
    def test_eab_inputs_without_profiling_raises(self):
        sac = SharingAwareCaching(scaled_config(baseline(), 1.0 / 16))
        with pytest.raises(RuntimeError, match="no profiling data"):
            sac.eab_inputs()

    def test_fresh_sac_is_memory_side(self):
        sac = SharingAwareCaching(scaled_config(baseline(), 1.0 / 16))
        assert sac.mode == "memory-side"
        assert not sac.profiling
        assert not sac.caches_remote_data
        assert sac.flush_partitions() == []

    def test_plan_delegates_to_active_mode(self):
        sac = SharingAwareCaching(scaled_config(baseline(), 1.0 / 16))
        # Memory-side: remote requests go to the home chip.
        assert sac.plan(0, 3).stages[0].chip == 3

    def test_sac_shares_the_single_noc(self):
        sac = SharingAwareCaching(scaled_config(baseline(), 1.0 / 16))
        assert sac.dedicated_memory_network is False


class TestModularSetIndex:
    def test_default_index_function(self):
        index = modular_set_index(num_sets=8, line_size=128)
        assert index(0) == 0
        assert index(128) == 1
        assert index(8 * 128) == 0
        assert index(9 * 128 + 5) == 1


class TestBaseOrganizationHooks:
    class Minimal(LLCOrganization):
        name = "minimal"

        @property
        def mode(self):
            return "memory-side"

        def plan(self, chip, home):
            return RoutePlan(stages=(LookupStage(chip=home),))

    def test_default_hooks_are_noops(self):
        org = self.Minimal()
        org.attach(None)
        org.begin_kernel(None, "k")
        org.begin_epoch(None, 0)
        org.end_epoch(None, 0)
        org.end_kernel(None)
        org.profile_boundary(None)
        org.observe_access(None, 0, 0, 0, None)
        assert org.flush_partitions() == []
        assert org.profiling is False
        assert not org.caches_remote_data

    def test_memory_side_plan_table_is_complete(self):
        org = MemorySideLLC(4)
        for chip in range(4):
            for home in range(4):
                plan = org.plan(chip, home)
                assert plan.stages[0].chip == home
