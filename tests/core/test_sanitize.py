"""The runtime kernel-contract sanitizer (``REPRO_SANITIZE=1``)."""

import numpy as np
import pytest

from repro.arch.config import CacheConfig
from repro.cache.vector import VectorBank, _encode_stream
from repro.core import sanitize

LINE = 128


@pytest.fixture(autouse=True)
def clean_report():
    sanitize.report().clear()
    yield
    sanitize.report().clear()


@pytest.fixture
def on(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


def small_bank():
    config = CacheConfig(size_bytes=16 * 4 * LINE, associativity=4,
                         line_size=LINE)
    return VectorBank(config, ["s0", "s1"])


def batch(n=32, seed=5):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 64, size=n) * LINE).astype(np.int64)
    writes = rng.random(n) < 0.3
    cache_idx = rng.integers(0, 2, size=n).astype(np.int64)
    return cache_idx, addrs, writes


class TestEnabled:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.enabled()

    def test_zero_is_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.enabled()

    def test_one_is_on(self, on):
        assert sanitize.enabled()


class TestFreeze:
    def test_freezes_arrays_in_nested_tuples(self):
        inner = np.arange(3)
        obj = (1, (inner, "x"), np.zeros(2))
        sanitize.freeze(obj)
        assert not inner.flags.writeable
        assert not obj[2].flags.writeable

    def test_non_arrays_pass_through(self):
        sanitize.freeze(("a", 3, None))  # must not raise


class TestExpect:
    def test_valid_array_passes(self):
        sanitize.expect("site", "x", np.zeros(4, dtype=np.int64),
                        "int64", 4)
        assert sanitize.report().count == 0

    @pytest.mark.parametrize("value, detail", [
        ([1, 2], "is list"),
        (np.zeros(4, dtype=np.float64), "dtype float64"),
        (np.zeros((2, 2), dtype=np.int64), "ndim 2"),
        (np.zeros(3, dtype=np.int64), "length 3"),
    ])
    def test_contract_breaches_raise_and_record(self, value, detail):
        with pytest.raises(sanitize.SanitizerError):
            sanitize.expect("site", "x", value, "int64", 4)
        [violation] = sanitize.report().violations
        assert violation.kind == "contract"
        assert violation.site == "site"


class TestGuarded:
    def test_read_only_write_becomes_encoding_write(self):
        frozen = np.arange(4)
        frozen.setflags(write=False)
        with pytest.raises(sanitize.SanitizerError):
            with sanitize.guarded("kernel"):
                frozen[0] = 9
        [violation] = sanitize.report().violations
        assert violation.kind == "encoding-write"
        assert violation.site == "kernel"

    def test_fp_anomalies_raise(self):
        with pytest.raises(sanitize.SanitizerError):
            with sanitize.guarded("kernel"):
                np.float64(1.0) / np.float64(0.0)
        [violation] = sanitize.report().violations
        assert violation.kind == "fp-error"

    def test_unrelated_value_errors_propagate(self):
        with pytest.raises(ValueError, match="unrelated"):
            with sanitize.guarded("kernel"):
                raise ValueError("unrelated")
        assert sanitize.report().count == 0


class TestReport:
    def test_summary_lists_violations(self):
        report = sanitize.report()
        assert report.summary() == "sanitizer: clean"
        report.record("contract", "site", "boom")
        assert "1 violation(s)" in report.summary()
        assert "[contract] site: boom" in report.summary()


def encode_small_stream():
    rows = np.array([0, 1, 0, 1, 0], dtype=np.int64)
    tg = np.array([10, 20, 10, 30, 40], dtype=np.int64)
    wr = np.array([False, True, False, False, True])
    return _encode_stream(rows, tg, wr, 2)


class TestEncodingFreeze:
    def test_sanitized_encodings_are_read_only(self, on):
        enc = encode_small_stream()
        for bucket in enc.buckets:
            assert not bucket.idx.flags.writeable
            assert not bucket.pi_chain.flags.writeable

    def test_unsanitized_encodings_stay_writeable(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        enc = encode_small_stream()
        assert enc.buckets[0].idx.flags.writeable

    def test_seeded_replay_side_mutation_is_detected(self, on):
        # Regression: a deliberately injected write to a shared
        # encoding buffer during replay must surface as a recorded
        # encoding-write violation, not silently corrupt later lanes.
        enc = encode_small_stream()
        bucket = enc.buckets[0]
        with pytest.raises(sanitize.SanitizerError):
            with sanitize.guarded("_replay_encoding"):
                bucket.pi_chain[0] = 99
        [violation] = sanitize.report().violations
        assert violation.kind == "encoding-write"
        assert violation.site == "_replay_encoding"
        # The frozen buffer really was protected.
        assert bucket.pi_chain[0] != 99


class TestEntryPointContracts:
    def test_clean_batch_is_identical_to_unsanitized(self, monkeypatch):
        cache_idx, addrs, writes = batch()
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = small_bank().access_many_grouped(cache_idx, addrs, writes)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        guarded = small_bank().access_many_grouped(cache_idx, addrs, writes)
        assert plain is not None and guarded is not None
        np.testing.assert_array_equal(plain.hits, guarded.hits)
        np.testing.assert_array_equal(plain.evicted_addr,
                                      guarded.evicted_addr)
        np.testing.assert_array_equal(plain.evicted_dirty,
                                      guarded.evicted_dirty)
        assert sanitize.report().count == 0

    def test_float_addresses_fail_the_contract(self, on):
        cache_idx, addrs, writes = batch()
        with pytest.raises(sanitize.SanitizerError):
            small_bank().access_many_grouped(
                cache_idx, addrs.astype(np.float64), writes)
        [violation] = sanitize.report().violations
        assert violation.kind == "contract"
        assert violation.site == "VectorBank.access_many_grouped"

    def test_mismatched_lengths_fail_the_contract(self, on):
        cache_idx, addrs, writes = batch()
        with pytest.raises(sanitize.SanitizerError):
            small_bank().access_many_grouped(cache_idx, addrs, writes[:-1])
        [violation] = sanitize.report().violations
        assert violation.kind == "contract"

    def test_disabled_sanitizer_skips_the_contract(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        cache_idx, addrs, writes = batch()
        # Wrong dtype goes straight to the kernel (and blows up there
        # or not) without a recorded violation — the sanitizer is off.
        try:
            small_bank().access_many_grouped(
                cache_idx, addrs.astype(np.float64), writes)
        except Exception:
            pass
        assert sanitize.report().count == 0
