"""Unit tests for the EAB analytical model (paper Section 3.3)."""

import math

import pytest

from repro.arch import baseline
from repro.core import (
    EABInputs,
    architecture_bandwidths,
    decide,
    eab_memory_side,
    eab_sm_side,
    llc_slice_uniformity,
)


def make_inputs(**overrides):
    defaults = dict(
        r_local=0.5,
        lsu_memory_side=0.8,
        lsu_sm_side=0.8,
        llc_hit_memory_side=0.8,
        llc_hit_sm_side=0.8,
        b_intra=8192.0,
        b_inter=576.0,
        b_llc=16384.0,
        b_mem=1750.0)
    defaults.update(overrides)
    return EABInputs(**defaults)


class TestLSU:
    def test_uniform_distribution_gives_one(self):
        assert llc_slice_uniformity([100] * 16) == pytest.approx(1.0)

    def test_single_hot_slice_gives_one_over_n(self):
        requests = [0] * 15 + [500]
        assert llc_slice_uniformity(requests) == pytest.approx(1 / 16)

    def test_half_loaded(self):
        # Half the slices get the peak load, half get zero.
        requests = [100, 0] * 8
        assert llc_slice_uniformity(requests) == pytest.approx(0.5)

    def test_all_zero_is_neutral(self):
        assert llc_slice_uniformity([0, 0, 0]) == 1.0

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            llc_slice_uniformity([1, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            llc_slice_uniformity([])


class TestMemorySideEAB:
    def test_remote_side_is_capped_by_inter_chip_bandwidth(self):
        result = eab_memory_side(make_inputs(r_local=0.0))
        assert result.remote <= 576.0
        assert result.local == pytest.approx(0.0)

    def test_local_side_is_capped_by_intra_bandwidth(self):
        # Enormous LLC hit bandwidth: the intra-chip NoC becomes the cap.
        result = eab_memory_side(make_inputs(
            r_local=1.0, llc_hit_memory_side=1.0, b_llc=1e9))
        assert result.local == pytest.approx(8192.0)

    def test_miss_path_goes_through_memory_bandwidth(self):
        # No hits: everything is bounded by B_mem * R.
        result = eab_memory_side(make_inputs(
            r_local=1.0, llc_hit_memory_side=0.0))
        assert result.local == pytest.approx(min(8192, 1750.0))

    def test_total_is_sum_of_sides(self):
        result = eab_memory_side(make_inputs())
        assert result.total == pytest.approx(result.local + result.remote)


class TestSMSideEAB:
    def test_noc_bandwidth_is_shared_by_request_fractions(self):
        # Table 1: under SM-side, B_SM_LLC is B_intra * R per side.
        inputs = make_inputs(r_local=0.25, llc_hit_sm_side=1.0, b_llc=1e9)
        result = eab_sm_side(inputs)
        assert result.local == pytest.approx(8192 * 0.25)
        assert result.remote == pytest.approx(8192 * 0.75)

    def test_remote_misses_are_capped_by_inter_chip(self):
        # All remote, no hits: the LLC->memory leg crosses the ring.
        inputs = make_inputs(r_local=0.0, llc_hit_sm_side=0.0)
        result = eab_sm_side(inputs)
        assert result.remote == pytest.approx(min(8192, 576.0))

    def test_high_hit_rate_escapes_inter_chip_cap(self):
        # The SM-side advantage: hits are served at intra-chip bandwidth.
        low = eab_sm_side(make_inputs(r_local=0.0, llc_hit_sm_side=0.1))
        high = eab_sm_side(make_inputs(r_local=0.0, llc_hit_sm_side=0.9))
        assert high.remote > low.remote


class TestDecision:
    def test_sharing_friendly_profile_prefers_sm_side(self):
        # High remote fraction, high SM-side hit rate (small shared set).
        inputs = make_inputs(r_local=0.4, llc_hit_sm_side=0.85,
                             llc_hit_memory_side=0.9)
        assert decide(inputs) == "sm-side"

    def test_replication_thrashing_prefers_memory_side(self):
        # The CRD predicts a collapsed SM-side hit rate.
        inputs = make_inputs(r_local=0.8, llc_hit_sm_side=0.2,
                             llc_hit_memory_side=0.85)
        assert decide(inputs) == "memory-side"

    def test_theta_guards_marginal_wins(self):
        # Construct a marginal SM-side advantage below theta.
        inputs = make_inputs(r_local=1.0, llc_hit_sm_side=0.8,
                             llc_hit_memory_side=0.8)
        mem = eab_memory_side(inputs).total
        sm = eab_sm_side(inputs).total
        assert sm <= mem * 1.05
        assert decide(inputs, theta=0.05) == "memory-side"

    def test_zero_theta_takes_any_win(self):
        inputs = make_inputs(r_local=0.4, llc_hit_sm_side=0.9)
        assert decide(inputs, theta=0.0) == "sm-side"

    def test_rejects_negative_theta(self):
        with pytest.raises(ValueError):
            decide(make_inputs(), theta=-0.1)


class TestInputValidation:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            make_inputs(r_local=1.5)
        with pytest.raises(ValueError):
            make_inputs(llc_hit_sm_side=-0.1)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            make_inputs(b_inter=0.0)

    def test_r_remote_is_complement(self):
        assert make_inputs(r_local=0.3).r_remote == pytest.approx(0.7)


class TestArchitectureBandwidths:
    def test_baseline_terms(self):
        terms = architecture_bandwidths(baseline())
        # Half of 4 TB/s bisection per chip x 4 chips.
        assert terms["b_intra"] == pytest.approx(8192.0)
        # 64 slices x 256 B/cycle = 16 TB/s at 1 GHz (Table 3).
        assert terms["b_llc"] == pytest.approx(64 * 256)
        assert terms["b_mem"] == pytest.approx(1750.0)
        # Ring egress derated by the mean hop count (4/3 for 4 chips).
        assert terms["b_inter"] == pytest.approx(4 * 192 / (4 / 3))

    def test_single_chip_has_no_inter_chip_term(self):
        from repro.arch import with_chip_count
        terms = architecture_bandwidths(with_chip_count(baseline(), 1))
        assert terms["b_inter"] == math.inf


class TestGoldenValues:
    """Hand-computed Table 1 cross-checks for one fixed input."""

    def golden_inputs(self):
        return make_inputs(
            r_local=0.6, lsu_memory_side=0.5, lsu_sm_side=0.75,
            llc_hit_memory_side=0.9, llc_hit_sm_side=0.6,
            b_intra=1000.0, b_inter=100.0, b_llc=2000.0, b_mem=400.0)

    def test_memory_side_by_hand(self):
        # hit_bw = 2000 * 0.5 * 0.9 = 900; miss_bw = 2000 * 0.5 * 0.1 = 100
        # local  = min(1000, 900*0.6 + min(100*0.6, inf, 400*0.6)) = min(1000, 540+60) = 600
        # remote = min(100, 900*0.4 + min(100*0.4, inf, 400*0.4)) = 100
        result = eab_memory_side(self.golden_inputs())
        assert result.local == pytest.approx(600.0)
        assert result.remote == pytest.approx(100.0)
        assert result.total == pytest.approx(700.0)

    def test_sm_side_by_hand(self):
        # hit_bw = 2000 * 0.75 * 0.6 = 900; miss_bw = 2000 * 0.75 * 0.4 = 600
        # local  = min(1000*0.6, 900*0.6 + min(600*0.6, inf, 400*0.6)) = min(600, 540+240) = 600
        # remote = min(1000*0.4, 900*0.4 + min(600*0.4, 100, 400*0.4)) = min(400, 360+100) = 400
        result = eab_sm_side(self.golden_inputs())
        assert result.local == pytest.approx(600.0)
        assert result.remote == pytest.approx(400.0)
        assert result.total == pytest.approx(1000.0)

    def test_decision_on_golden_inputs(self):
        # 1000 > 700 * 1.05 -> SM-side wins despite its lower hit rate:
        # the replicated hot data is served at intra-chip bandwidth.
        assert decide(self.golden_inputs(), theta=0.05) == "sm-side"
