"""Property-based tests for the EAB model's structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EABInputs,
    decide,
    eab_memory_side,
    eab_sm_side,
    llc_slice_uniformity,
)

rates = st.floats(min_value=0.0, max_value=1.0)
bandwidths = st.floats(min_value=1.0, max_value=1e6)


@st.composite
def eab_inputs(draw):
    return EABInputs(
        r_local=draw(rates),
        lsu_memory_side=draw(rates),
        lsu_sm_side=draw(rates),
        llc_hit_memory_side=draw(rates),
        llc_hit_sm_side=draw(rates),
        b_intra=draw(bandwidths),
        b_inter=draw(bandwidths),
        b_llc=draw(bandwidths),
        b_mem=draw(bandwidths))


@given(eab_inputs())
@settings(max_examples=300, deadline=None)
def test_eab_is_nonnegative_and_bounded(inputs):
    for result in (eab_memory_side(inputs), eab_sm_side(inputs)):
        assert result.local >= 0.0
        assert result.remote >= 0.0
        assert result.total == result.local + result.remote
    # The memory-side remote EAB can never exceed the inter-chip links.
    assert eab_memory_side(inputs).remote <= inputs.b_inter + 1e-9
    # Neither side can exceed the SM<->LLC interconnect under SM-side.
    sm = eab_sm_side(inputs)
    assert sm.local <= inputs.b_intra * inputs.r_local + 1e-9
    assert sm.remote <= inputs.b_intra * inputs.r_remote + 1e-9


@given(eab_inputs(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=300, deadline=None)
def test_decision_is_consistent_with_eab_comparison(inputs, theta):
    mem = eab_memory_side(inputs).total
    sm = eab_sm_side(inputs).total
    expected = "sm-side" if sm > mem * (1.0 + theta) else "memory-side"
    assert decide(inputs, theta=theta) == expected


@given(eab_inputs())
@settings(max_examples=200, deadline=None)
def test_raising_theta_never_flips_toward_sm_side(inputs):
    low = decide(inputs, theta=0.0)
    high = decide(inputs, theta=0.5)
    if low == "memory-side":
        assert high == "memory-side"


@given(eab_inputs(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_sm_side_eab_is_monotone_in_its_hit_rate(inputs, other_hit):
    lo, hi = sorted([inputs.llc_hit_sm_side, other_hit])
    import dataclasses
    low = eab_sm_side(dataclasses.replace(inputs, llc_hit_sm_side=lo))
    high = eab_sm_side(dataclasses.replace(inputs, llc_hit_sm_side=hi))
    # More hits can only help: hit bandwidth dominates the capped
    # miss path term per Table 1.
    assert high.total >= low.total - 1e-6 * max(1.0, low.total)


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=64))
@settings(max_examples=300, deadline=None)
def test_lsu_bounds(requests):
    lsu = llc_slice_uniformity(requests)
    assert 0.0 < lsu <= 1.0 + 1e-12
    if len(set(requests)) == 1 and requests[0] > 0:
        assert lsu == 1.0


@given(st.lists(st.integers(min_value=1, max_value=10_000),
                min_size=2, max_size=64))
@settings(max_examples=200, deadline=None)
def test_lsu_is_scale_invariant(requests):
    scaled = [r * 3 for r in requests]
    assert llc_slice_uniformity(requests) == \
        llc_slice_uniformity(scaled)
