"""Unit tests for the Section 3.6 hardware-overhead accounting."""

import pytest

from repro.arch import baseline, with_chip_count, with_sectored_llc
from repro.core import crd_bytes, overhead_report


class TestCRDBytes:
    def test_conventional_544(self):
        assert crd_bytes(baseline().sac, num_chips=4, sectored=False) == 544

    def test_sectored_736(self):
        assert crd_bytes(baseline().sac, num_chips=4, sectored=True,
                         sectors_per_line=4) == 736

    def test_scales_with_chip_count(self):
        sac = baseline().sac
        assert crd_bytes(sac, 8, False) > crd_bytes(sac, 4, False)


class TestOverheadReport:
    def test_total_620_bytes_conventional(self):
        report = overhead_report(baseline())
        assert report.crd_bytes == 544
        assert report.lsu_counter_bytes == 64
        assert report.scalar_counter_bytes == 12
        assert report.total_bytes == 620

    def test_total_812_bytes_sectored(self):
        report = overhead_report(with_sectored_llc(baseline()))
        assert report.total_bytes == 812

    def test_sectored_autodetected_from_config(self):
        report = overhead_report(with_sectored_llc(baseline()))
        assert report.crd_bytes == 736

    def test_bypass_overheads_match_paper(self):
        report = overhead_report(baseline())
        assert report.bypass_power_overhead == pytest.approx(0.016, abs=0.004)
        assert report.bypass_area_overhead == pytest.approx(0.019, abs=0.004)

    def test_two_chip_variant_shrinks_crd(self):
        report = overhead_report(with_chip_count(baseline(), 2))
        assert report.crd_bytes < 544
