"""End-to-end tests for the SAC controller."""

import dataclasses

import pytest

from repro.arch import baseline
from repro.core import SharingAwareCaching
from repro.sim import SimulationEngine, simulate
from repro.sim.run import scaled_config
from repro.workloads import (
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
    TraceGenerator,
    get,
)

SCALE = 1.0 / 16


def sp_like_spec(iterations=1):
    """A workload with a small shared hot set: SM-side preferred."""
    phase = PhaseSpec(weight_true=0.5, weight_false=0.3, weight_private=0.2,
                      hot_fraction=0.1, hot_fraction_true=0.15,
                      hot_weight=0.9, intensity=3000.0)
    return BenchmarkSpec(
        name="sp-like", suite="test", num_ctas=64, footprint_mb=24,
        true_shared_mb=10, false_shared_mb=6, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=4),),
        iterations=iterations, seed=3)


def mp_like_spec():
    """A big replicated shared hot set: memory-side preferred."""
    phase = PhaseSpec(weight_true=0.42, weight_false=0.08,
                      weight_private=0.50, hot_fraction=0.2,
                      hot_fraction_true=0.5, hot_fraction_private=0.06,
                      hot_weight=0.92, intensity=7600.0, true_affinity=0.85)
    return BenchmarkSpec(
        name="mp-like", suite="test", num_ctas=64, footprint_mb=160,
        true_shared_mb=14, false_shared_mb=16, preference="memory-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=2),),
        iterations=4, seed=5)


def run_sac(spec, **sac_kwargs):
    config = scaled_config(baseline(), SCALE)
    sac = SharingAwareCaching(config, **sac_kwargs)
    generator = TraceGenerator(
        spec, num_chips=config.num_chips,
        clusters_per_chip=config.chip.num_clusters,
        line_size=config.line_size, page_size=config.page_size,
        accesses_per_epoch_per_chip=4096, scale=SCALE)
    engine = SimulationEngine(config, sac)
    stats = engine.run(generator.kernels(), benchmark=spec.name)
    return sac, stats


class TestDecisions:
    def test_sp_workload_selects_sm_side(self):
        sac, _stats = run_sac(sp_like_spec())
        assert [d.chosen for d in sac.stats.decisions] == ["sm-side"]
        assert sac.stats.reconfigurations >= 2  # switch + revert

    def test_mp_workload_stays_memory_side(self):
        sac, _stats = run_sac(mp_like_spec())
        assert all(d.chosen == "memory-side"
                   for d in sac.stats.decisions)
        assert sac.stats.reconfigurations == 0

    def test_decision_is_made_per_kernel(self):
        sac, _stats = run_sac(sp_like_spec(iterations=3))
        assert len(sac.stats.decisions) == 3

    def test_decision_table(self):
        sac, _stats = run_sac(sp_like_spec())
        table = sac.decision_table()
        assert list(table.values()) == ["sm-side"]

    def test_eab_inputs_are_recorded(self):
        sac, _stats = run_sac(sp_like_spec())
        inputs = sac.stats.decisions[0].eab_inputs
        assert inputs is not None
        assert 0.0 <= inputs.r_local <= 1.0
        assert inputs.llc_hit_sm_side > 0.0


class TestModeMechanics:
    def test_reverts_to_memory_side_after_kernel(self):
        sac, _stats = run_sac(sp_like_spec())
        assert sac.mode == "memory-side"

    def test_kernel_stats_record_the_running_mode(self):
        _sac, stats = run_sac(sp_like_spec())
        assert stats.kernels[0].organization == "sm-side"

    def test_reconfiguration_cost_is_charged(self):
        _sac, stats = run_sac(sp_like_spec())
        assert stats.kernels[0].reconfig_cycles > 0

    def test_zero_reconfig_cost_ablation(self):
        sac_free, stats_free = run_sac(sp_like_spec(),
                                       zero_reconfig_cost=True)
        _sac, stats_real = run_sac(sp_like_spec())
        assert stats_free.cycles <= stats_real.cycles
        assert sac_free.stats.drain_cycles_total == 0.0


class TestAblations:
    def test_no_crd_uses_memory_side_hit_rate(self):
        sac, _stats = run_sac(mp_like_spec(), use_crd=False)
        inputs = sac.stats.decisions[0].eab_inputs
        assert inputs.llc_hit_sm_side == inputs.llc_hit_memory_side

    def test_no_lsu_pins_uniformity(self):
        sac, _stats = run_sac(sp_like_spec(), use_lsu=False)
        inputs = sac.stats.decisions[0].eab_inputs
        assert inputs.lsu_memory_side == 1.0
        assert inputs.lsu_sm_side == 1.0


class TestReprofiling:
    def test_periodic_reprofiling_produces_extra_decisions(self):
        config = scaled_config(baseline(), SCALE)
        sac_cfg = dataclasses.replace(config.sac,
                                      reprofile_interval_cycles=2000)
        config = config.with_updates(sac=sac_cfg)
        sac = SharingAwareCaching(config)
        spec = sp_like_spec()
        generator = TraceGenerator(
            spec, num_chips=config.num_chips,
            clusters_per_chip=config.chip.num_clusters,
            line_size=config.line_size, page_size=config.page_size,
            accesses_per_epoch_per_chip=4096, scale=SCALE)
        engine = SimulationEngine(config, sac)
        engine.run(generator.kernels(), benchmark=spec.name)
        assert len(sac.stats.decisions) > 1


class TestSACAgainstSuite:
    """SAC must pick the winner on real suite benchmarks (smoke level)."""

    def test_rn_selects_sm_side(self):
        stats = simulate(get("RN"), "sac", accesses_per_epoch=2048)
        assert all(k.organization == "sm-side" for k in stats.kernels)

    def test_nn_selects_memory_side(self):
        stats = simulate(get("NN"), "sac", accesses_per_epoch=2048)
        assert all(k.organization == "memory-side" for k in stats.kernels)
