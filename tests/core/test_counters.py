"""Unit tests for the SAC profiling-counter architecture."""

import pytest

from repro.arch import SACConfig
from repro.core import ProfilingCounters


def make_counters(num_chips=4, slices=16, **kwargs):
    return ProfilingCounters(SACConfig(), num_chips=num_chips,
                             slices_per_chip=slices, llc_num_sets=2048,
                             line_size=128, **kwargs)


class TestRLocal:
    def test_all_local(self):
        counters = make_counters()
        for chip in range(4):
            counters.record_issue(chip, home_chip=chip, sm_slice_index=0)
        assert counters.r_local == 1.0

    def test_all_remote(self):
        counters = make_counters()
        counters.record_issue(0, home_chip=1, sm_slice_index=0)
        counters.record_issue(1, home_chip=2, sm_slice_index=0)
        assert counters.r_local == 0.0

    def test_mixed(self):
        counters = make_counters()
        counters.record_issue(0, home_chip=0, sm_slice_index=0)
        counters.record_issue(0, home_chip=1, sm_slice_index=1)
        counters.record_issue(0, home_chip=2, sm_slice_index=2)
        counters.record_issue(0, home_chip=0, sm_slice_index=3)
        assert counters.r_local == pytest.approx(0.5)

    def test_empty_defaults_local(self):
        assert make_counters().r_local == 1.0


class TestHitRates:
    def test_memory_side_hit_rate(self):
        counters = make_counters()
        counters.record_llc_outcome(True)
        counters.record_llc_outcome(True)
        counters.record_llc_outcome(False)
        assert counters.llc_hit_memory_side == pytest.approx(2 / 3)

    def test_sm_side_hit_rate_pools_crds(self):
        counters = make_counters()
        # Two requests homed at chip 0: first misses, repeat hits.
        counters.record_arrival(0, slice_index=0, requester_chip=1, addr=0)
        counters.record_arrival(0, slice_index=0, requester_chip=1, addr=0)
        assert counters.llc_hit_sm_side == pytest.approx(0.5)


class TestLSU:
    def test_memory_side_lsu_from_arrivals(self):
        counters = make_counters(num_chips=1, slices=4)
        for _ in range(8):
            counters.record_arrival(0, slice_index=0, requester_chip=0,
                                    addr=0)
        assert counters.lsu_memory_side == pytest.approx(0.25)

    def test_sm_side_lsu_from_issues(self):
        counters = make_counters(num_chips=1, slices=4)
        for slice_index in range(4):
            counters.record_issue(0, home_chip=0, sm_slice_index=slice_index)
        assert counters.lsu_sm_side == pytest.approx(1.0)


class TestStorage:
    def test_paper_620_bytes_conventional(self):
        counters = make_counters()
        assert counters.storage_bytes_per_chip() == 620

    def test_paper_812_bytes_sectored(self):
        counters = make_counters(sectored=True, sectors_per_line=4)
        assert counters.storage_bytes_per_chip() == 812


class TestReset:
    def test_reset_clears_everything(self):
        counters = make_counters()
        counters.record_issue(0, 1, 0)
        counters.record_arrival(1, 0, 0, 0)
        counters.record_llc_outcome(True)
        counters.reset()
        assert counters.total_requests == 0
        assert counters.llc_hit_memory_side == 0.0
        assert counters.llc_hit_sm_side == 0.0
