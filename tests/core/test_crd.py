"""Unit tests for the Chip Request Directory (paper Section 3.4)."""

import pytest

from repro.arch import SACConfig
from repro.core import ChipRequestDirectory

LINE = 128


def make_crd(sets=8, ways=4, llc_sets=8, num_chips=4, **kwargs):
    sac = SACConfig(crd_sets=sets, crd_ways=ways)
    return ChipRequestDirectory(sac, num_chips=num_chips,
                                llc_num_sets=llc_sets, line_size=LINE,
                                **kwargs)


class TestHitPrediction:
    def test_repeat_access_by_same_chip_predicts_hit(self):
        crd = make_crd()
        assert crd.observe(chip=0, addr=0x0) is False
        assert crd.observe(chip=0, addr=0x0) is True

    def test_first_access_by_each_chip_misses(self):
        """Each chip's first touch would miss its own SM-side LLC."""
        crd = make_crd()
        for chip in range(4):
            assert crd.observe(chip, 0x0) is False
        # All four now hit their (hypothetical) local replicas.
        for chip in range(4):
            assert crd.observe(chip, 0x0) is True

    def test_predicted_hit_rate(self):
        crd = make_crd()
        crd.observe(0, 0x0)
        crd.observe(0, 0x0)
        crd.observe(1, 0x0)
        assert crd.predicted_hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction_clears_sharing_history(self):
        crd = make_crd(ways=2, llc_sets=1, sets=1)
        crd.observe(0, 0 * LINE)
        crd.observe(0, 1 * LINE)
        crd.observe(0, 2 * LINE)  # evicts line 0
        assert crd.observe(0, 0 * LINE) is False  # history lost

    def test_capacity_pressure_lowers_prediction(self):
        """A working set far over the (sampled) capacity yields low hits."""
        crd = make_crd(ways=4, llc_sets=1, sets=1)
        for _round in range(3):
            for line in range(16):
                crd.observe(0, line * LINE)
        assert crd.predicted_hit_rate < 0.2


class TestSampling:
    def test_stride_sampling_ignores_unsampled_sets(self):
        crd = make_crd(sets=2, llc_sets=8)  # stride = 4
        assert crd.sample_stride == 4
        assert crd.observe(0, 0 * LINE) is False  # set 0: sampled
        assert crd.observe(0, 1 * LINE) is None   # set 1: not sampled
        assert crd.observe(0, 4 * LINE) is not None  # set 4: sampled
        assert crd.requests == 2

    def test_custom_set_index_function(self):
        crd = make_crd(sets=1, llc_sets=4,
                       set_index_fn=lambda addr: 0)
        # Every address maps to set 0, which is sampled.
        assert crd.observe(0, 0x12345) is not None
        assert crd.observe(0, 0x54321) is not None


class TestStorage:
    def test_paper_conventional_budget(self):
        """8 sets x 16 ways x (30-bit tag + 4 chip bits) = 544 bytes."""
        sac = SACConfig()
        crd = ChipRequestDirectory(sac, num_chips=4, llc_num_sets=2048,
                                   line_size=128)
        assert crd.storage_bytes() == 544

    def test_paper_sectored_budget(self):
        """Sectored: 4 bits per chip -> 736 bytes."""
        sac = SACConfig()
        crd = ChipRequestDirectory(sac, num_chips=4, llc_num_sets=2048,
                                   line_size=128, sectored=True,
                                   sectors_per_line=4)
        assert crd.storage_bytes() == 736


class TestSectored:
    def test_sectors_tracked_independently(self):
        crd = make_crd(sectored=True, sectors_per_line=4)
        assert crd.observe(0, 0) is False      # sector 0
        assert crd.observe(0, 32) is False     # sector 1: new sector
        assert crd.observe(0, 0) is True
        assert crd.observe(0, 32) is True


class TestReset:
    def test_reset_clears_state_and_counters(self):
        crd = make_crd()
        crd.observe(0, 0)
        crd.observe(0, 0)
        crd.reset()
        assert crd.requests == 0
        assert crd.predicted_hit_rate == 0.0
        assert crd.observe(0, 0) is False

    def test_rejects_empty_llc(self):
        with pytest.raises(ValueError):
            make_crd(llc_sets=0)
