"""Unit tests for the page-migration baseline."""

import pytest

from repro.memory import PageTable
from repro.memory.migration import DominantAccessorMigration


def make_policy(**kwargs):
    defaults = dict(page_size=4096, num_chips=4, min_accesses=8,
                    min_share=0.6, cooldown_epochs=2)
    defaults.update(kwargs)
    return DominantAccessorMigration(**defaults)


def make_table():
    table = PageTable(page_size=4096, num_chips=4)
    table.home_chip(0, requesting_chip=0)  # page 0 homed at chip 0
    return table


class TestPageTableMigrate:
    def test_migrate_moves_home(self):
        table = make_table()
        assert table.migrate(0, 2) == 0
        assert table.lookup(0) == 2

    def test_migrate_unallocated_raises(self):
        with pytest.raises(KeyError):
            make_table().migrate(99, 1)

    def test_migrate_bad_chip_raises(self):
        with pytest.raises(ValueError):
            make_table().migrate(0, 9)


class TestDominantAccessorMigration:
    def test_dominant_remote_accessor_triggers_migration(self):
        policy = make_policy()
        table = make_table()
        for _ in range(10):
            policy.observe(0, chip=3)
        moves = policy.end_epoch(table)
        assert moves == [(0, 0, 3)]
        assert table.lookup(0) == 3
        assert policy.stats.migrations == 1
        assert policy.stats.bytes_moved == 4096

    def test_below_threshold_does_not_migrate(self):
        policy = make_policy(min_accesses=100)
        table = make_table()
        for _ in range(10):
            policy.observe(0, chip=3)
        assert policy.end_epoch(table) == []

    def test_balanced_sharing_does_not_migrate(self):
        """Truly shared pages have no dominant accessor."""
        policy = make_policy()
        table = make_table()
        for chip in range(4):
            for _ in range(10):
                policy.observe(0, chip=chip)
        assert policy.end_epoch(table) == []
        assert table.lookup(0) == 0

    def test_local_dominance_is_a_noop(self):
        policy = make_policy()
        table = make_table()
        for _ in range(20):
            policy.observe(0, chip=0)  # the home chip itself
        assert policy.end_epoch(table) == []

    def test_cooldown_prevents_ping_pong(self):
        policy = make_policy(cooldown_epochs=2)
        table = make_table()
        for _ in range(10):
            policy.observe(0, chip=3)
        assert policy.end_epoch(table)  # migrated 0 -> 3
        for _ in range(10):
            policy.observe(0, chip=1)
        assert policy.end_epoch(table) == []  # cooling down
        assert table.lookup(0) == 3

    def test_counters_reset_each_epoch(self):
        policy = make_policy(min_accesses=10)
        table = make_table()
        for _ in range(6):
            policy.observe(0, chip=3)
        policy.end_epoch(table)
        for _ in range(6):
            policy.observe(0, chip=3)
        # 6 + 6 across epochs never reaches the per-epoch threshold.
        assert policy.end_epoch(table) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            make_policy(min_accesses=0)
        with pytest.raises(ValueError):
            make_policy(min_share=0.3)
        with pytest.raises(ValueError):
            make_policy(cooldown_epochs=-1)


class TestEngineIntegration:
    def test_migration_reduces_remote_traffic_for_misplaced_pages(self):
        """Round-robin placement misplaces private pages; migration
        repatriates them and cuts inter-chip traffic."""
        import dataclasses
        from repro.arch import baseline
        from repro.sim import EngineParams, simulate
        from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec

        phase = PhaseSpec(weight_true=0.0, weight_false=0.0,
                          weight_private=1.0, hot_fraction=0.3,
                          hot_weight=0.9, intensity=4000.0)
        spec = BenchmarkSpec(
            name="misplaced", suite="test", num_ctas=16, footprint_mb=8,
            true_shared_mb=0, false_shared_mb=0, preference="memory-side",
            kernels=(KernelSpec(name="k", phase=phase, epochs=6),),
            iterations=2, seed=41)
        config = baseline().with_updates(page_allocation="round-robin")
        plain = simulate(spec, "memory-side", config=config,
                         accesses_per_epoch=1024)
        migrated = simulate(spec, "memory-side", config=config,
                            accesses_per_epoch=1024,
                            params=EngineParams(page_migration=True))
        assert migrated.inter_chip_bytes < plain.inter_chip_bytes
        assert migrated.cycles <= plain.cycles * 1.02
