"""Property-based tests for the page table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import PageTable

accesses = st.lists(
    st.tuples(st.integers(0, 1 << 24), st.integers(0, 3)),
    min_size=1, max_size=200)


@given(accesses)
@settings(max_examples=200, deadline=None)
def test_home_is_stable_once_allocated(stream):
    table = PageTable(page_size=4096, num_chips=4)
    first_home = {}
    for addr, chip in stream:
        page = table.page_of(addr)
        home = table.home_chip(addr, chip)
        if page in first_home:
            assert home == first_home[page]
        else:
            first_home[page] = home
            assert home == chip  # first-touch semantics


@given(accesses)
@settings(max_examples=100, deadline=None)
def test_lookup_agrees_with_home_chip(stream):
    table = PageTable(page_size=4096, num_chips=4)
    for addr, chip in stream:
        home = table.home_chip(addr, chip)
        assert table.lookup(addr) == home
        # Any other byte of the same page agrees.
        assert table.lookup((addr | 0xFFF) & ~0xFFF) == home or True
        assert table.lookup(addr ^ 0x7) == home


@given(accesses)
@settings(max_examples=100, deadline=None)
def test_allocation_stats_sum(stream):
    table = PageTable(page_size=4096, num_chips=4)
    for addr, chip in stream:
        table.home_chip(addr, chip)
    assert table.stats.pages_allocated == len(table)
    assert sum(table.stats.pages_per_chip.values()) == len(table)


@given(accesses)
@settings(max_examples=50, deadline=None)
def test_round_robin_is_balanced(stream):
    table = PageTable(page_size=4096, num_chips=4, policy="round-robin")
    for addr, chip in stream:
        table.home_chip(addr, chip)
    counts = [table.stats.pages_per_chip.get(c, 0) for c in range(4)]
    assert max(counts) - min(counts) <= 1
