"""Unit tests for the page table (first-touch allocation)."""

import pytest

from repro.memory import PageTable


class TestFirstTouch:
    def test_first_toucher_becomes_home(self):
        table = PageTable(page_size=4096, num_chips=4)
        assert table.home_chip(0x1000, requesting_chip=2) == 2
        # Later touches by other chips do not move the page.
        assert table.home_chip(0x1000, requesting_chip=0) == 2
        assert table.home_chip(0x1FFF, requesting_chip=3) == 2

    def test_distinct_pages_allocate_independently(self):
        table = PageTable(page_size=4096, num_chips=4)
        table.home_chip(0x0000, 0)
        table.home_chip(0x1000, 1)
        assert table.lookup(0x0000) == 0
        assert table.lookup(0x1000) == 1

    def test_lookup_without_allocation_returns_none(self):
        table = PageTable(page_size=4096, num_chips=4)
        assert table.lookup(0x5000) is None
        assert len(table) == 0

    def test_footprint_counts_allocated_pages(self):
        table = PageTable(page_size=4096, num_chips=2)
        table.home_chip(0, 0)
        table.home_chip(4096, 1)
        table.home_chip(100, 1)  # same page as 0
        assert len(table) == 2
        assert table.footprint_bytes() == 8192

    def test_stats_count_per_chip(self):
        table = PageTable(page_size=4096, num_chips=2)
        table.home_chip(0, 0)
        table.home_chip(4096, 0)
        table.home_chip(8192, 1)
        assert table.stats.pages_allocated == 3
        assert table.stats.pages_per_chip == {0: 2, 1: 1}


class TestRoundRobin:
    def test_cycles_through_chips(self):
        table = PageTable(page_size=4096, num_chips=3, policy="round-robin")
        homes = [table.home_chip(i * 4096, requesting_chip=0)
                 for i in range(6)]
        assert homes == [0, 1, 2, 0, 1, 2]


class TestValidation:
    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            PageTable(page_size=1000, num_chips=4)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            PageTable(page_size=4096, num_chips=4, policy="numa")

    def test_reset_clears_everything(self):
        table = PageTable(page_size=4096, num_chips=4)
        table.home_chip(0, 1)
        table.reset()
        assert len(table) == 0
        assert table.stats.pages_allocated == 0
