"""Unit tests for the PAE-style randomized address mapping."""

import pytest

from repro.memory import AddressMapping


def make_mapping(**kwargs):
    defaults = dict(line_size=128, slices_per_chip=16, channels_per_chip=8)
    defaults.update(kwargs)
    return AddressMapping(**defaults)


class TestDeterminism:
    def test_same_address_same_slice(self):
        mapping = make_mapping()
        assert mapping.llc_slice_of(0x12345) == mapping.llc_slice_of(0x12345)

    def test_same_line_same_slice(self):
        mapping = make_mapping()
        base = 0x4000
        assert mapping.llc_slice_of(base) == mapping.llc_slice_of(base + 127)

    def test_different_seeds_differ(self):
        a = make_mapping(seed=1)
        b = make_mapping(seed=2)
        lines = [i * 128 for i in range(256)]
        assert any(a.llc_slice_of(l) != b.llc_slice_of(l) for l in lines)


class TestUniformity:
    def test_slices_are_roughly_uniform(self):
        mapping = make_mapping()
        counts = [0] * 16
        n = 16_000
        for i in range(n):
            counts[mapping.llc_slice_of(i * 128)] += 1
        expected = n / 16
        for count in counts:
            assert abs(count - expected) < expected * 0.2

    def test_channels_are_roughly_uniform(self):
        mapping = make_mapping()
        counts = [0] * 8
        n = 8_000
        for i in range(n):
            counts[mapping.channel_of(i * 128)] += 1
        expected = n / 8
        for count in counts:
            assert abs(count - expected) < expected * 0.2

    def test_consecutive_lines_spread(self):
        """PAE's key property: a sequential sweep doesn't camp on a slice."""
        mapping = make_mapping()
        slices = {mapping.llc_slice_of(i * 128) for i in range(64)}
        assert len(slices) >= 12


class TestGlobalSlice:
    def test_global_slice_composes_chip_and_slice(self):
        mapping = make_mapping()
        addr = 0x8000
        local = mapping.llc_slice_of(addr)
        assert mapping.global_slice_of(addr, home_chip=0) == local
        assert mapping.global_slice_of(addr, home_chip=3) == 48 + local


class TestValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            make_mapping(line_size=100)

    def test_rejects_zero_slices(self):
        with pytest.raises(ValueError):
            make_mapping(slices_per_chip=0)
