"""Unit tests for the DRAM partition bandwidth model."""

import pytest

from repro.arch import MemoryConfig
from repro.memory import DramPartition, DramSystem


def make_partition():
    return DramPartition(MemoryConfig(channels_per_chip=4,
                                      channel_bw_bytes_per_cycle=100.0),
                         chip=0)


class TestCharging:
    def test_epoch_cycles_follow_bottleneck_channel(self):
        partition = make_partition()
        partition.charge(0, 1000, is_write=False)
        partition.charge(1, 400, is_write=False)
        assert partition.epoch_cycles() == pytest.approx(10.0)

    def test_uniform_load_uses_all_channels(self):
        partition = make_partition()
        for channel in range(4):
            partition.charge(channel, 500, is_write=False)
        assert partition.epoch_cycles() == pytest.approx(5.0)

    def test_end_epoch_resets_charges_not_stats(self):
        partition = make_partition()
        partition.charge(0, 100, is_write=True)
        partition.end_epoch()
        assert partition.epoch_cycles() == 0.0
        assert partition.stats.write_bytes == 100

    def test_stats_split_reads_and_writes(self):
        partition = make_partition()
        partition.charge(0, 64, is_write=False)
        partition.charge(0, 32, is_write=True)
        assert partition.stats.read_bytes == 64
        assert partition.stats.write_bytes == 32
        assert partition.stats.total_bytes == 96

    def test_rejects_bad_channel(self):
        partition = make_partition()
        with pytest.raises(IndexError):
            partition.charge(4, 10, is_write=False)

    def test_rejects_negative_bytes(self):
        partition = make_partition()
        with pytest.raises(ValueError):
            partition.charge(0, -1, is_write=False)


class TestSystem:
    def test_system_indexes_partitions_by_chip(self):
        system = DramSystem(MemoryConfig(), num_chips=4)
        system[2].charge(0, 128, is_write=False)
        assert system.total_bytes() == 128
        assert system.bytes_by_chip()[2] == 128
        assert system.bytes_by_chip()[0] == 0

    def test_system_end_epoch_touches_all_partitions(self):
        system = DramSystem(MemoryConfig(), num_chips=2)
        system[0].charge(0, 128, is_write=False)
        system[1].charge(0, 128, is_write=False)
        system.end_epoch()
        assert all(p.epoch_cycles() == 0.0 for p in system)

    def test_reset_clears_stats(self):
        system = DramSystem(MemoryConfig(), num_chips=2)
        system[0].charge(0, 128, is_write=True)
        system.reset()
        assert system.total_bytes() == 0


class TestEpochBytes:
    def test_epoch_bytes_sums_channels(self):
        partition = make_partition()
        partition.charge(0, 100, is_write=False)
        partition.charge(1, 50, is_write=True)
        assert partition.epoch_bytes() == 150.0
        partition.end_epoch()
        assert partition.epoch_bytes() == 0.0
