"""Unit tests for the intra-chip crossbar model."""

import pytest

from repro.arch import NoCConfig
from repro.noc import Crossbar


def make_crossbar():
    return Crossbar(NoCConfig(), chip=0)


class TestPorts:
    def test_llc_ports_are_first(self):
        xbar = make_crossbar()
        assert xbar.llc_port(0) == 0
        assert xbar.llc_port(15) == 15

    def test_inter_chip_ports_follow(self):
        xbar = make_crossbar()
        assert xbar.inter_chip_port(0) == 16
        assert xbar.inter_chip_port(5) == 21

    def test_out_of_range_ports_raise(self):
        xbar = make_crossbar()
        with pytest.raises(IndexError):
            xbar.llc_port(16)
        with pytest.raises(IndexError):
            xbar.inter_chip_port(6)


class TestTiming:
    def test_hot_port_binds_epoch(self):
        xbar = make_crossbar()
        port_bw = xbar.config.port_bw_bytes_per_cycle
        xbar.charge_request(0, port_bw * 10)
        assert xbar.epoch_cycles() == pytest.approx(10.0)

    def test_bisection_binds_spread_traffic(self):
        xbar = make_crossbar()
        net_bw = xbar.config.bisection_bw_bytes_per_cycle / 2
        # Spread evenly over all 22 ports: per-port load is low but the
        # aggregate exceeds the request net's bisection share.
        per_port = net_bw * 22 / 22
        for port in range(22):
            xbar.charge_request(port, per_port)
        assert xbar.epoch_cycles() == pytest.approx(22 * per_port / net_bw)

    def test_request_and_response_nets_drain_concurrently(self):
        xbar = make_crossbar()
        port_bw = xbar.config.port_bw_bytes_per_cycle
        xbar.charge_request(0, port_bw * 4)
        xbar.charge_response(1, port_bw * 7)
        assert xbar.epoch_cycles() == pytest.approx(7.0)

    def test_end_epoch_resets_loads_keeps_stats(self):
        xbar = make_crossbar()
        xbar.charge_request(0, 100)
        xbar.charge_response(0, 50)
        xbar.end_epoch()
        assert xbar.epoch_cycles() == 0.0
        assert xbar.stats.request_bytes == 100
        assert xbar.stats.response_bytes == 50
        assert xbar.stats.total_bytes == 150


class TestDiagnostics:
    def test_port_loads_reflect_charges(self):
        xbar = make_crossbar()
        xbar.charge_request(3, 100)
        xbar.charge_response(5, 50)
        loads = xbar.port_loads()
        assert loads["request"][3] == 100
        assert loads["response"][5] == 50
        assert sum(loads["request"]) == 100

    def test_epoch_bytes_totals_both_networks(self):
        xbar = make_crossbar()
        xbar.charge_request(0, 100)
        xbar.charge_response(1, 60)
        assert xbar.epoch_bytes() == 160

    def test_reset_clears_stats_and_loads(self):
        xbar = make_crossbar()
        xbar.charge_request(0, 100)
        xbar.reset()
        assert xbar.stats.total_bytes == 0
        assert xbar.epoch_cycles() == 0.0
