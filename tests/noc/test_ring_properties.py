"""Property-based tests for the inter-chip ring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import InterChipConfig
from repro.noc import InterChipRing

chip_counts = st.integers(min_value=2, max_value=8)


@given(chip_counts, st.data())
@settings(max_examples=200, deadline=None)
def test_hops_is_a_metric(num_chips, data):
    ring = InterChipRing(InterChipConfig(), num_chips)
    a = data.draw(st.integers(0, num_chips - 1))
    b = data.draw(st.integers(0, num_chips - 1))
    assert ring.hops(a, b) == ring.hops(b, a)          # symmetry
    assert (ring.hops(a, b) == 0) == (a == b)          # identity
    assert ring.hops(a, b) <= num_chips // 2           # ring diameter


@given(chip_counts, st.data())
@settings(max_examples=200, deadline=None)
def test_path_length_matches_hops(num_chips, data):
    ring = InterChipRing(InterChipConfig(), num_chips)
    a = data.draw(st.integers(0, num_chips - 1))
    b = data.draw(st.integers(0, num_chips - 1))
    path = ring.path(a, b)
    assert len(path) == ring.hops(a, b)
    # The path is connected and ends at the destination.
    node = a
    for src, dst in path:
        assert src == node
        node = dst
    assert node == b


@given(chip_counts,
       st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                          st.integers(1, 10_000)), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_charge_conservation(num_chips, messages):
    ring = InterChipRing(InterChipConfig(), num_chips)
    expected_hop_bytes = 0
    for src, dst, num_bytes in messages:
        src %= num_chips
        dst %= num_chips
        ring.charge(src, dst, num_bytes)
        expected_hop_bytes += ring.hops(src, dst) * num_bytes
    assert sum(ring.segment_loads().values()) == expected_hop_bytes
    assert ring.epoch_cycles() >= 0.0


@given(chip_counts, st.integers(0, 7), st.integers(0, 7))
@settings(max_examples=100, deadline=None)
def test_more_traffic_never_reduces_epoch_time(num_chips, src, dst):
    src %= num_chips
    dst %= num_chips
    ring = InterChipRing(InterChipConfig(), num_chips)
    ring.charge(src, dst, 1000)
    before = ring.epoch_cycles()
    ring.charge(src, dst, 1000)
    assert ring.epoch_cycles() >= before
