"""Unit tests for the NoC power/area model (paper-reported deltas)."""

import pytest

from repro.arch import NoCConfig
from repro.noc import (
    crossbar_cost,
    memory_side_noc_cost,
    report,
    sac_noc_cost,
    sm_side_noc_cost,
)


class TestCalibration:
    """The baseline geometry must reproduce the paper's relative costs."""

    def test_sm_side_costs_about_21_percent_more_power(self):
        delta = report(NoCConfig())["sm_side_vs_memory_side"]
        assert delta.power == pytest.approx(0.21, abs=0.02)

    def test_sm_side_costs_about_18_percent_more_area(self):
        delta = report(NoCConfig())["sm_side_vs_memory_side"]
        assert delta.area == pytest.approx(0.18, abs=0.02)

    def test_sac_bypass_costs_about_1_6_percent_power(self):
        delta = report(NoCConfig())["sac_vs_memory_side"]
        assert delta.power == pytest.approx(0.016, abs=0.004)

    def test_sac_bypass_costs_about_1_9_percent_area(self):
        delta = report(NoCConfig())["sac_vs_memory_side"]
        assert delta.area == pytest.approx(0.019, abs=0.004)


class TestModelShape:
    def test_cost_scales_with_ports(self):
        small = crossbar_cost(8, 8)
        large = crossbar_cost(16, 16)
        assert large.power > small.power
        assert large.area > small.area

    def test_sac_is_cheaper_than_two_noc_sm_side(self):
        config = NoCConfig()
        assert sac_noc_cost(config).power < sm_side_noc_cost(config).power
        assert sac_noc_cost(config).area < sm_side_noc_cost(config).area

    def test_sac_adds_cost_over_memory_side(self):
        config = NoCConfig()
        assert sac_noc_cost(config).power > memory_side_noc_cost(config).power

    def test_relative_to_is_a_ratio_minus_one(self):
        a = crossbar_cost(8, 8)
        assert a.relative_to(a).power == pytest.approx(0.0)

    def test_rejects_empty_crossbar(self):
        with pytest.raises(ValueError):
            crossbar_cost(0, 4)
