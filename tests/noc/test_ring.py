"""Unit tests for the inter-chip ring network."""

import pytest

from repro.arch import InterChipConfig
from repro.noc import InterChipRing


def make_ring(num_chips=4):
    return InterChipRing(InterChipConfig(), num_chips)


class TestTopology:
    def test_adjacent_hops(self):
        ring = make_ring()
        assert ring.hops(0, 1) == 1
        assert ring.hops(1, 0) == 1

    def test_opposite_corner_hops(self):
        ring = make_ring()
        assert ring.hops(0, 2) == 2
        assert ring.hops(1, 3) == 2

    def test_self_distance_zero(self):
        assert make_ring().hops(2, 2) == 0

    def test_path_traverses_intermediate_segments(self):
        ring = make_ring()
        assert ring.path(0, 2) in ([(0, 1), (1, 2)], [(0, 3), (3, 2)])
        assert ring.path(3, 0) == [(3, 0)]

    def test_path_takes_shorter_direction(self):
        ring = InterChipRing(InterChipConfig(), 6)
        assert ring.path(0, 5) == [(0, 5)]
        assert len(ring.path(0, 3)) == 3


class TestCharging:
    def test_multi_hop_charges_every_segment(self):
        ring = make_ring()
        ring.charge(0, 2, 96)
        loads = ring.segment_loads()
        assert sum(loads.values()) == pytest.approx(192)
        assert ring.stats.hop_bytes == 192
        assert ring.stats.bytes_sent == 96

    def test_self_messages_are_free(self):
        ring = make_ring()
        ring.charge(1, 1, 1000)
        assert ring.epoch_cycles() == 0.0
        assert ring.stats.messages == 0

    def test_epoch_cycles_follow_hottest_segment(self):
        ring = make_ring()
        pair_bw = ring.config.pair_bw(4)  # 96 B/cyc
        ring.charge(0, 1, pair_bw * 5)
        ring.charge(2, 3, pair_bw * 2)
        assert ring.epoch_cycles() == pytest.approx(5.0)

    def test_opposite_directions_do_not_share_bandwidth(self):
        ring = make_ring()
        pair_bw = ring.config.pair_bw(4)
        ring.charge(0, 1, pair_bw * 3)
        ring.charge(1, 0, pair_bw * 3)
        # Bidirectional links: each direction drains independently.
        assert ring.epoch_cycles() == pytest.approx(3.0)

    def test_end_epoch_clears_loads(self):
        ring = make_ring()
        ring.charge(0, 1, 100)
        ring.end_epoch()
        assert ring.epoch_cycles() == 0.0
        assert ring.stats.bytes_sent == 100


class TestFullyConnected:
    def make(self, num_chips=4):
        return InterChipRing(
            InterChipConfig(topology="fully-connected"), num_chips)

    def test_every_pair_is_one_hop(self):
        mesh = self.make()
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    assert mesh.hops(src, dst) == 1
                    assert mesh.path(src, dst) == [(src, dst)]

    def test_pair_bandwidth_splits_over_peers(self):
        mesh = self.make()
        # 6 links x 32 B/cyc over 3 peers = 64 B/cyc per pair.
        assert mesh.config.pair_bw(4) == pytest.approx(64.0)

    def test_charge_uses_direct_segment(self):
        mesh = self.make()
        mesh.charge(0, 2, 100)
        assert mesh.segment_loads() == {(0, 2): 100.0}
        assert mesh.stats.hop_bytes == 100


class TestValidation:
    def test_single_chip_ring_is_trivial(self):
        ring = make_ring(num_chips=1)
        assert ring.hops(0, 0) == 0

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            make_ring(num_chips=0)
