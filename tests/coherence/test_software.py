"""Unit tests for software (flush-based) coherence."""

import pytest

from repro.arch import CoherenceConfig
from repro.coherence import SoftwareCoherence


def make():
    return SoftwareCoherence(CoherenceConfig(protocol="software"),
                             line_size=128)


class TestFlushCost:
    def test_clean_flush_is_free(self):
        cost = make().flush_cost(lines_invalidated=100, dirty_lines=0)
        assert cost.cycles == 0.0
        assert cost.writeback_bytes == 0
        assert cost.lines_invalidated == 100

    def test_dirty_flush_charges_cycles_and_bytes(self):
        cost = make().flush_cost(lines_invalidated=100, dirty_lines=40)
        assert cost.cycles == pytest.approx(40 * 0.25)
        assert cost.writeback_bytes == 40 * 128

    def test_rejects_more_dirty_than_lines(self):
        with pytest.raises(ValueError):
            make().flush_cost(lines_invalidated=10, dirty_lines=11)

    def test_rejects_hardware_protocol(self):
        with pytest.raises(ValueError):
            SoftwareCoherence(CoherenceConfig(protocol="hardware"), 128)
