"""Unit tests for the hardware directory coherence protocol."""

import pytest

from repro.arch import CoherenceConfig
from repro.coherence import HardwareCoherence


def make(num_chips=4):
    return HardwareCoherence(CoherenceConfig(protocol="hardware"),
                             num_chips=num_chips)


class TestSharerTracking:
    def test_fill_registers_sharer(self):
        directory = make()
        directory.on_fill(0x1000, chip=1)
        assert directory.sharers_of(0x1000) == [1]

    def test_multiple_sharers(self):
        directory = make()
        for chip in (0, 2, 3):
            directory.on_fill(0x1000, chip)
        assert directory.sharers_of(0x1000) == [0, 2, 3]

    def test_evict_removes_sharer_and_empty_entries(self):
        directory = make()
        directory.on_fill(0x1000, 0)
        directory.on_fill(0x1000, 1)
        directory.on_evict(0x1000, 0)
        assert directory.sharers_of(0x1000) == [1]
        directory.on_evict(0x1000, 1)
        assert len(directory) == 0

    def test_evict_of_untracked_line_is_noop(self):
        directory = make()
        directory.on_evict(0x5000, 2)
        assert len(directory) == 0


class TestWriteInvalidate:
    def test_write_invalidates_other_sharers_only(self):
        directory = make()
        for chip in (0, 1, 2):
            directory.on_fill(0x1000, chip)
        victims = directory.on_write(0x1000, chip=1)
        assert sorted(victims) == [0, 2]
        # The writer's own copy survives (paper Section 5.6: the local
        # copy is updated, unlike HMG which also updates the home copy).
        assert directory.sharers_of(0x1000) == [1]

    def test_write_to_private_line_invalidates_nothing(self):
        directory = make()
        directory.on_fill(0x1000, 3)
        assert directory.on_write(0x1000, 3) == []

    def test_write_to_untracked_line(self):
        directory = make()
        assert directory.on_write(0x2000, 0) == []

    def test_invalidation_messages_are_queued_per_epoch(self):
        directory = make()
        directory.on_fill(0x1000, 0)
        directory.on_fill(0x1000, 1)
        directory.on_write(0x1000, 0)
        messages = directory.pop_epoch_messages()
        assert messages == [(0, 1)]
        assert directory.pop_epoch_messages() == []

    def test_stats_count_invalidations(self):
        directory = make()
        for chip in range(4):
            directory.on_fill(0x1000, chip)
        directory.on_write(0x1000, 0)
        assert directory.stats.invalidations_sent == 3
        assert directory.stats.writes_observed == 1


class TestLifecycle:
    def test_peak_tracking(self):
        directory = make()
        for i in range(10):
            directory.on_fill(i * 128, 0)
        for i in range(10):
            directory.on_evict(i * 128, 0)
        assert directory.stats.lines_tracked_peak == 10
        assert len(directory) == 0

    def test_reset(self):
        directory = make()
        directory.on_fill(0, 0)
        directory.on_fill(0, 1)
        directory.on_write(0, 0)
        directory.reset()
        assert len(directory) == 0
        assert directory.pop_epoch_messages() == []
        assert directory.stats.writes_observed == 0

    def test_rejects_software_protocol(self):
        with pytest.raises(ValueError):
            HardwareCoherence(CoherenceConfig(protocol="software"), 4)
