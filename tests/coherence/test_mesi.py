"""Unit tests for the MESI directory protocol."""

import pytest

from repro.coherence.mesi import (
    ActionKind,
    MESIDirectory,
    State,
)


def make():
    return MESIDirectory(num_chips=4)


class TestReads:
    def test_first_read_grants_exclusive(self):
        directory = make()
        assert directory.read(0x100, chip=1) == []
        assert directory.state_of(0x100) is State.EXCLUSIVE
        assert directory.sharers_of(0x100) == [1]

    def test_silent_reread_by_owner(self):
        directory = make()
        directory.read(0x100, 1)
        assert directory.read(0x100, 1) == []
        assert directory.state_of(0x100) is State.EXCLUSIVE

    def test_second_reader_causes_transfer_and_shared(self):
        directory = make()
        directory.read(0x100, 0)
        actions = directory.read(0x100, 2)
        assert len(actions) == 1
        assert actions[0].kind is ActionKind.TRANSFER
        assert actions[0].chip == 0
        assert not actions[0].writeback
        assert directory.state_of(0x100) is State.SHARED
        assert directory.sharers_of(0x100) == [0, 2]

    def test_read_of_modified_line_downgrades_with_writeback(self):
        directory = make()
        directory.write(0x100, 0)
        actions = directory.read(0x100, 3)
        assert actions[0].kind is ActionKind.DOWNGRADE
        assert actions[0].chip == 0
        assert actions[0].writeback
        assert directory.state_of(0x100) is State.SHARED

    def test_third_reader_joins_silently(self):
        directory = make()
        directory.read(0x100, 0)
        directory.read(0x100, 1)
        assert directory.read(0x100, 2) == []
        assert directory.sharers_of(0x100) == [0, 1, 2]


class TestWrites:
    def test_first_write_goes_modified(self):
        directory = make()
        assert directory.write(0x100, 2) == []
        assert directory.state_of(0x100) is State.MODIFIED
        assert directory.sharers_of(0x100) == [2]

    def test_write_upgrades_exclusive_silently(self):
        directory = make()
        directory.read(0x100, 1)
        assert directory.write(0x100, 1) == []
        assert directory.state_of(0x100) is State.MODIFIED

    def test_write_to_shared_invalidates_others(self):
        directory = make()
        for chip in (0, 1, 3):
            directory.read(0x100, chip)
        actions = directory.write(0x100, 1)
        invalidated = {a.chip for a in actions}
        assert invalidated == {0, 3}
        assert all(a.kind is ActionKind.INVALIDATE for a in actions)
        assert directory.state_of(0x100) is State.MODIFIED
        assert directory.sharers_of(0x100) == [1]

    def test_write_steals_modified_line_with_writeback(self):
        directory = make()
        directory.write(0x100, 0)
        actions = directory.write(0x100, 2)
        assert len(actions) == 1
        assert actions[0].kind is ActionKind.INVALIDATE
        assert actions[0].chip == 0
        assert actions[0].writeback

    def test_rewrite_by_owner_is_silent(self):
        directory = make()
        directory.write(0x100, 0)
        assert directory.write(0x100, 0) == []


class TestEvictions:
    def test_evicting_modified_copy_requires_writeback(self):
        directory = make()
        directory.write(0x100, 0)
        assert directory.evict(0x100, 0) is True
        assert directory.state_of(0x100) is State.INVALID
        assert len(directory) == 0

    def test_evicting_clean_copy_is_silent(self):
        directory = make()
        directory.read(0x100, 0)
        assert directory.evict(0x100, 0) is False

    def test_evicting_one_sharer_keeps_the_rest(self):
        directory = make()
        directory.read(0x100, 0)
        directory.read(0x100, 1)
        directory.evict(0x100, 0)
        assert directory.sharers_of(0x100) == [1]
        assert directory.state_of(0x100) is State.SHARED

    def test_evicting_untracked_is_noop(self):
        directory = make()
        assert directory.evict(0x500, 1) is False


class TestStats:
    def test_counters(self):
        directory = make()
        directory.read(0x100, 0)       # E
        directory.read(0x100, 1)       # transfer
        directory.write(0x100, 2)      # 2 invalidations
        directory.read(0x100, 3)       # downgrade + writeback
        stats = directory.stats
        assert stats.reads == 3
        assert stats.writes == 1
        assert stats.transfers == 1
        assert stats.invalidations == 2
        assert stats.downgrades == 1
        assert stats.writebacks >= 1

    def test_reset(self):
        directory = make()
        directory.write(0x100, 0)
        directory.reset()
        assert len(directory) == 0
        assert directory.stats.writes == 0


class TestInvariants:
    def test_modified_always_has_single_sharer(self):
        import random
        rng = random.Random(5)
        directory = make()
        lines = [0x100, 0x200, 0x300]
        for _ in range(500):
            line = rng.choice(lines)
            chip = rng.randrange(4)
            op = rng.random()
            if op < 0.45:
                directory.read(line, chip)
            elif op < 0.8:
                directory.write(line, chip)
            else:
                directory.evict(line, chip)
            state = directory.state_of(line)
            sharers = directory.sharers_of(line)
            if state in (State.MODIFIED, State.EXCLUSIVE):
                assert len(sharers) == 1
            if state is State.INVALID:
                assert sharers == []
            if sharers == [] and state is not State.INVALID:
                pytest.fail("non-invalid state without sharers")
