"""Unit and integration tests for the LADM-style LLC baseline."""

import pytest

from repro.llc.ladm import LADMLLC, TouchFilter
from repro.sim import make_organization, simulate
from repro.arch import baseline
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec, get


class TestTouchFilter:
    def test_first_touch_is_new(self):
        filt = TouchFilter(capacity=4)
        assert filt.touch(1) is False
        assert filt.touch(1) is True

    def test_lru_eviction_forgets_old_lines(self):
        filt = TouchFilter(capacity=2)
        filt.touch(1)
        filt.touch(2)
        filt.touch(3)  # evicts 1
        assert filt.touch(1) is False

    def test_touch_refreshes_recency(self):
        filt = TouchFilter(capacity=2)
        filt.touch(1)
        filt.touch(2)
        filt.touch(1)  # refresh 1 -> 2 is now LRU
        filt.touch(3)  # evicts 2
        assert filt.touch(1) is True
        assert filt.touch(2) is False

    def test_clear(self):
        filt = TouchFilter()
        filt.touch(1)
        filt.clear()
        assert filt.touch(1) is False

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TouchFilter(capacity=0)


class TestLADMOrganization:
    def test_factory_builds_it(self):
        org = make_organization("ladm", baseline())
        assert isinstance(org, LADMLLC)
        assert org.name == "ladm"

    def test_remote_allocate_needs_second_touch(self):
        org = LADMLLC(4)
        assert org.remote_allocate(0, 0x1000) is False
        assert org.remote_allocate(0, 0x1000) is True
        # Filters are per chip.
        assert org.remote_allocate(1, 0x1000) is False

    def test_routing_matches_dynamic_shape(self):
        org = LADMLLC(4)
        assert len(org.plan(0, 2).stages) == 2
        assert len(org.plan(1, 1).stages) == 1

    def test_mode_is_memory_side_with_remote_caching(self):
        org = LADMLLC(4)
        assert org.mode == "memory-side"
        assert org.caches_remote_data


def tiny_spec(weight_false=0.6):
    phase = PhaseSpec(weight_true=0.2, weight_false=weight_false,
                      weight_private=0.8 - weight_false,
                      hot_fraction=0.15, hot_weight=0.85, intensity=2800.0)
    return BenchmarkSpec(
        name="ladm-tiny", suite="test", num_ctas=16, footprint_mb=16,
        true_shared_mb=3, false_shared_mb=8, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=4),),
        iterations=2, seed=47)


class TestLADMEngine:
    def test_runs_end_to_end(self):
        stats = simulate(tiny_spec(), "ladm", scale=1.0 / 32,
                         accesses_per_epoch=512)
        assert stats.cycles > 0
        assert stats.organization == "ladm"

    def test_sits_between_memory_side_and_sm_side_on_sp_work(self):
        spec = get("CFD")
        mem = simulate(spec, "memory-side", accesses_per_epoch=2048)
        sm = simulate(spec, "sm-side", accesses_per_epoch=2048)
        ladm = simulate(spec, "ladm", accesses_per_epoch=2048)
        assert sm.cycles < mem.cycles
        assert sm.cycles * 0.95 <= ladm.cycles <= mem.cycles * 1.05

    def test_filters_reset_at_kernel_boundaries(self):
        org = LADMLLC(4)
        org.remote_allocate(0, 0x1000)
        org.begin_kernel(None, "k")
        assert org.remote_allocate(0, 0x1000) is False
