"""Unit tests for the LLC organizations' routing plans."""

import pytest

from repro.llc import (
    PARTITION_LOCAL,
    PARTITION_REMOTE,
    DynamicLLC,
    LookupStage,
    MemorySideLLC,
    RoutePlan,
    SMSideLLC,
    StaticLLC,
)


class TestMemorySide:
    def test_routes_to_home_chip(self):
        org = MemorySideLLC(4)
        plan = org.plan(chip=0, home=3)
        assert plan.stages == (LookupStage(chip=3), )

    def test_local_request_stays_local(self):
        org = MemorySideLLC(4)
        assert org.plan(2, 2).stages[0].chip == 2

    def test_mode_and_flush(self):
        org = MemorySideLLC(4)
        assert org.mode == "memory-side"
        assert not org.caches_remote_data
        assert org.flush_partitions() == []


class TestSMSide:
    def test_always_routes_to_requester(self):
        org = SMSideLLC(4)
        for home in range(4):
            assert org.plan(1, home).stages[0].chip == 1

    def test_mode_and_flush(self):
        org = SMSideLLC(4)
        assert org.mode == "sm-side"
        assert org.caches_remote_data
        assert org.flush_partitions() == [(None, PARTITION_LOCAL)]

    def test_has_dedicated_memory_network(self):
        assert SMSideLLC(4).dedicated_memory_network


class TestStatic:
    def test_local_request_single_stage(self):
        org = StaticLLC(4)
        plan = org.plan(1, 1)
        assert len(plan.stages) == 1
        assert plan.stages[0] == LookupStage(chip=1,
                                             partition=PARTITION_LOCAL)

    def test_remote_request_probes_l15_then_home(self):
        org = StaticLLC(4)
        plan = org.plan(1, 3)
        assert plan.stages[0] == LookupStage(chip=1,
                                             partition=PARTITION_REMOTE)
        assert plan.stages[1] == LookupStage(chip=3,
                                             partition=PARTITION_LOCAL)

    def test_flushes_remote_partition(self):
        assert StaticLLC(4).flush_partitions() == [(None, PARTITION_REMOTE)]

    def test_zero_remote_fraction_is_memory_side_like(self):
        org = StaticLLC(4, remote_way_fraction=0.0)
        assert not org.caches_remote_data
        assert org.flush_partitions() == []

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            StaticLLC(4, remote_way_fraction=1.5)


class TestDynamic:
    def test_starts_half_remote(self, monkeypatch):
        org = DynamicLLC(4)

        class FakeCtx:
            class config:
                class chip:
                    class llc_slice:
                        associativity = 16
            stats = None

            def set_llc_partitioning(self, ways):
                self.ways = ways

        ctx = FakeCtx()
        org.attach(ctx)
        assert ctx.ways == {PARTITION_LOCAL: 8, PARTITION_REMOTE: 8}
        assert org.remote_ways == 8

    def test_routing_matches_static_shape(self):
        org = DynamicLLC(4)
        plan = org.plan(0, 2)
        assert len(plan.stages) == 2

    def test_rejects_negative_floors(self):
        with pytest.raises(ValueError):
            DynamicLLC(4, min_local_ways=-1)


class TestRoutePlan:
    def test_rejects_empty_plans(self):
        with pytest.raises(ValueError):
            RoutePlan(stages=())

    def test_rejects_three_stages(self):
        stages = tuple(LookupStage(chip=i) for i in range(3))
        with pytest.raises(ValueError):
            RoutePlan(stages=stages)
